package faultinject

import (
	"fmt"
	"sort"
	"strings"

	"chainmon/internal/dds"
	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
	"chainmon/internal/stats"
)

// Oracle computes ground-truth per-segment and end-to-end latencies
// directly from kernel-side event records — the global event times the
// monitors never see — and cross-checks every monitor verdict against them.
//
// The soundness contract it enforces (§IV-B of the paper):
//
//   - zero false negatives: every activation whose true end event falls
//     beyond the monitored deadline by more than the grace band, and every
//     activation that never produced an end event, must have raised a
//     temporal exception;
//   - ε-bounded false positives: an exception may only be raised when the
//     true end event is within slack of the deadline (or beyond it).
//
// Local segments receive explicit per-activation start events, so their
// deadline reference is the true start time and the bands only cover the
// clock noise between the two same-clock reads. Remote monitors arm their
// timer from the previous sample's transmitted source timestamp,
// t_st,n−1 + P + d_mon (Fig. 8), so the oracle replicates that deadline
// recurrence from the true kernel-side publication times: the reference
// resets on every reception the monitor accepted and advances by P over
// every exception. The band then only needs the sender+receiver clock
// error (2ε, widened by injected clock faults) plus the timeout routine's
// entry latency — the sender's activation jitter J^a is part of the
// contract, not of the band.
//
// Truth hooks are prepended to the DDS hook chains so the oracle observes
// raw receptions before any monitor discards a late sample.
type Oracle struct {
	k    *sim.Kernel
	segs []*SegmentTruth
	e2es []*E2ETruth
}

// NewOracle creates an empty oracle on the kernel.
func NewOracle(k *sim.Kernel) *Oracle {
	return &Oracle{k: k}
}

// Violation kinds reported by Check.
const (
	// KindFalseNegative: the true latency exceeded DMon + grace but the
	// monitor resolved the activation OK.
	KindFalseNegative = "false-negative"
	// KindLostNotDetected: the activation started and never produced an end
	// event, but no temporal exception was raised. The hard subset of the
	// false negatives — detecting these is what separates the
	// synchronization-based monitor from inter-arrival supervision.
	KindLostNotDetected = "lost-not-detected"
	// KindFalsePositive: an exception was raised although the true latency
	// was below DMon − slack.
	KindFalsePositive = "false-positive"
	// KindUnresolved: the monitor never resolved an activation inside its
	// supervised range.
	KindUnresolved = "unresolved"
	// KindE2EBound: all segments of a chain resolved OK but the true
	// end-to-end latency exceeded the chain bound plus the tolerance.
	KindE2EBound = "e2e-bound"
)

// Violation is one oracle finding.
type Violation struct {
	Segment    string
	Activation uint64
	Kind       string
	Detail     string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s act %d: %s (%s)", v.Segment, v.Activation, v.Kind, v.Detail)
}

// resolutionSource is anything that reports in-order activation
// resolutions; both monitor.LocalSegment and monitor.RemoteMonitor satisfy
// it.
type resolutionSource interface {
	OnResolve(monitor.ResolveFunc)
}

// SegmentTruth is the ground-truth record of one monitored segment.
type SegmentTruth struct {
	Name string
	// DMon is the segment's monitored deadline.
	DMon sim.Duration
	// Period is the segment's publication period (needed for the remote
	// deadline recurrence).
	Period sim.Duration
	// Slack is the allowed band below the true deadline in which an
	// exception is still legitimate (clock noise; for local segments the
	// same-clock measurement noise).
	Slack sim.Duration
	// Grace is the allowed band above the true deadline before a missing
	// exception counts as a false negative.
	Grace sim.Duration

	remote  bool
	starts  map[uint64]sim.Time
	ends    map[uint64]sim.Time
	res     map[uint64]monitor.Resolution
	tainted map[uint64]bool // touched by a recovery injection: latency truth unknown

	// timeline records hot-swapped deadline actuations (budget epochs) in
	// staging order. Empty means the construction deadline DMon held for the
	// whole run.
	timeline []deadlineChange

	haveRes  bool
	firstRes uint64
	lastRes  uint64
}

// deadlineChange is one staged deadline actuation: from At on, the
// monitored deadline is (eventually) DMon.
type deadlineChange struct {
	At   sim.Time
	DMon sim.Duration
}

// DeadlineChange records a deadline actuation staged at the given time.
// Calls must come in non-decreasing staging order (the budget table's
// epochs are totally ordered, so any actuation source is).
//
// The monitor applies a staged deadline at the top of its next scan pass,
// and the swap barrier keeps in-flight activations on the deadline they
// were armed with — so around an epoch boundary the oracle cannot know
// which of the two deadlines judged a given activation. The checks become
// interval-based: a false negative needs the true latency beyond the
// LARGEST deadline possibly in force near the start, a false positive
// needs it below the SMALLEST. Away from boundaries the interval collapses
// to a point and the checks are exactly as tight as the static ones.
func (st *SegmentTruth) DeadlineChange(at sim.Time, dmon sim.Duration) {
	st.timeline = append(st.timeline, deadlineChange{At: at, DMon: dmon})
}

// DeadlineChange records an actuation on the named segment truth; unknown
// names are ignored (the controller may manage segments the oracle does
// not watch).
func (o *Oracle) DeadlineChange(segment string, at sim.Time, dmon sim.Duration) {
	for _, st := range o.segs {
		if st.Name == segment {
			st.DeadlineChange(at, dmon)
		}
	}
}

// dmonBounds returns the smallest and largest monitored deadline that can
// have judged an activation started at the given time. The staging-to-
// application delay is at most one scan pass, bounded by the segment
// period, so every deadline in force anywhere in [start, start+Period] is
// a candidate: the value staged last before the window plus anything
// staged inside it.
func (st *SegmentTruth) dmonBounds(start sim.Time) (lo, hi sim.Duration) {
	lo, hi = st.DMon, st.DMon
	inForce := st.DMon
	until := start.Add(st.Period)
	for _, ch := range st.timeline {
		if ch.At <= start {
			inForce = ch.DMon
			lo, hi = inForce, inForce
			continue
		}
		if ch.At > until {
			break
		}
		if ch.DMon < lo {
			lo = ch.DMon
		}
		if ch.DMon > hi {
			hi = ch.DMon
		}
	}
	return lo, hi
}

// Segment registers a segment truth record. Remote marks segments whose
// verdicts come from a synchronization-based RemoteMonitor: their first
// resolved activation is excluded from checks (monitoring begins at the
// first reception, which is resolved OK unconditionally).
func (o *Oracle) Segment(name string, dmon, period, slack, grace sim.Duration, remote bool) *SegmentTruth {
	st := &SegmentTruth{
		Name: name, DMon: dmon, Period: period, Slack: slack, Grace: grace, remote: remote,
		starts:  make(map[uint64]sim.Time),
		ends:    make(map[uint64]sim.Time),
		res:     make(map[uint64]monitor.Resolution),
		tainted: make(map[uint64]bool),
	}
	o.segs = append(o.segs, st)
	return st
}

// Segments returns the registered truth records.
func (o *Oracle) Segments() []*SegmentTruth { return o.segs }

// prependDeliver installs a raw observer at the head of the subscription's
// hook chain, before any monitor can discard the sample.
func prependDeliver(sub *dds.Subscription, fn func(*dds.Sample)) {
	head := func(s *dds.Sample) bool { fn(s); return true }
	sub.OnDeliver = append([]func(*dds.Sample) bool{head}, sub.OnDeliver...)
}

func (st *SegmentTruth) recordStart(act uint64, at sim.Time) {
	if _, ok := st.starts[act]; !ok {
		st.starts[act] = at
	}
}

func (st *SegmentTruth) recordEnd(act uint64, at sim.Time) {
	if _, ok := st.ends[act]; !ok {
		st.ends[act] = at
	}
}

// StartOnDevicePublish records the device's publication events as segment
// start truth.
func (st *SegmentTruth) StartOnDevicePublish(dev *dds.Device) {
	dev.OnPublish = append(dev.OnPublish, func(s *dds.Sample) {
		st.recordStart(s.Activation, s.PubTime)
	})
}

// StartOnPublish records the publisher's publication events as start truth.
func (st *SegmentTruth) StartOnPublish(pub *dds.Publisher) {
	pub.OnPublish = append(pub.OnPublish, func(s *dds.Sample) {
		st.recordStart(s.Activation, s.PubTime)
	})
}

// StartOnDeliver records raw receptions at the subscription as start truth.
// Recovery injections (Recovered samples) count as real starts: the
// segment's computation genuinely begins with the substitute data, and the
// monitor's start event is posted for them too.
func (st *SegmentTruth) StartOnDeliver(sub *dds.Subscription) {
	prependDeliver(sub, func(s *dds.Sample) {
		st.recordStart(s.Activation, s.RecvTime)
	})
}

// EndOnDeliver records raw receptions at the subscription as end truth —
// before any monitor hook can discard a late sample. A Recovered sample is
// not a real arrival: it taints the activation instead (the latency truth
// is unknowable once a recovery was injected).
func (st *SegmentTruth) EndOnDeliver(sub *dds.Subscription) {
	prependDeliver(sub, func(s *dds.Sample) {
		if s.Recovered {
			st.tainted[s.Activation] = true
			return
		}
		st.recordEnd(s.Activation, s.RecvTime)
	})
}

// EndOnPublish records the publisher's publication events as end truth.
func (st *SegmentTruth) EndOnPublish(pub *dds.Publisher) {
	pub.OnPublish = append(pub.OnPublish, func(s *dds.Sample) {
		st.recordEnd(s.Activation, s.PubTime)
	})
}

// Watch subscribes to the monitor's verdicts for this segment.
func (st *SegmentTruth) Watch(src resolutionSource) {
	src.OnResolve(func(r monitor.Resolution) {
		if !st.haveRes || r.Activation < st.firstRes {
			st.firstRes = r.Activation
		}
		if !st.haveRes || r.Activation > st.lastRes {
			st.lastRes = r.Activation
		}
		st.haveRes = true
		if _, ok := st.res[r.Activation]; !ok {
			st.res[r.Activation] = r
		}
	})
}

// TrueLatency returns the ground-truth latency of one activation and
// whether both its start and end events were observed.
func (st *SegmentTruth) TrueLatency(act uint64) (sim.Duration, bool) {
	s, okS := st.starts[act]
	e, okE := st.ends[act]
	if !okS || !okE || e < s {
		return 0, false
	}
	return e.Sub(s), true
}

// Lost reports whether the activation started but never produced an end
// event.
func (st *SegmentTruth) Lost(act uint64) bool {
	_, okS := st.starts[act]
	_, okE := st.ends[act]
	return okS && !okE
}

// acts returns the sorted union of activations known from truth records and
// monitor resolutions.
func (st *SegmentTruth) activations() []uint64 {
	set := make(map[uint64]struct{}, len(st.starts)+len(st.res))
	for a := range st.starts {
		set[a] = struct{}{}
	}
	for a := range st.res {
		set[a] = struct{}{}
	}
	acts := make([]uint64, 0, len(set))
	for a := range set {
		acts = append(acts, a)
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i] < acts[j] })
	return acts
}

// inScope reports whether the activation is inside the monitor's supervised
// range: at or after the first resolution (strictly after, for remote
// segments) and at or before the last.
func (st *SegmentTruth) inScope(act uint64) bool {
	if !st.haveRes {
		return false
	}
	if st.remote && act <= st.firstRes {
		// Remote monitoring begins at the first reception, which is
		// resolved OK unconditionally (nothing earlier can be judged).
		return false
	}
	return act >= st.firstRes && act <= st.lastRes
}

// SegmentReport summarizes the cross-check of one segment.
type SegmentReport struct {
	Name      string
	Checked   int // activations cross-checked
	Skipped   int // out of supervised scope or tainted by recovery
	Lost      int // started, no end event
	TrueLate  int // arrived with true latency > DMon + Grace
	Exception int // monitor exceptions among checked activations
	FalseNeg  int
	FalsePos  int
}

func (r SegmentReport) String() string {
	return fmt.Sprintf("%-24s checked=%d lost=%d late=%d exceptions=%d falseNeg=%d falsePos=%d skipped=%d",
		r.Name, r.Checked, r.Lost, r.TrueLate, r.Exception, r.FalseNeg, r.FalsePos, r.Skipped)
}

func (st *SegmentTruth) check() (SegmentReport, []Violation) {
	if st.remote {
		return st.checkRemote()
	}
	return st.checkLocal()
}

// checkRemote replicates the remote monitor's deadline recurrence from the
// true publication times and cross-checks every verdict against it. The
// reference deadline for activation n is the previous accepted sample's
// publication time + P + DMon; every exception advances it by one period
// without a new timestamp (Fig. 8). Verdicts inside the ±Slack/Grace band
// around the reference are accepted either way; state then follows the
// monitor's actual decision so a borderline call cannot cascade.
func (st *SegmentTruth) checkRemote() (SegmentReport, []Violation) {
	rep := SegmentReport{Name: st.Name}
	var vs []Violation
	dlValid := false
	var deadline sim.Time
	advance := func(excepted bool, pub sim.Time, hasPub bool) {
		if !excepted && hasPub {
			deadline = pub.Add(st.Period + st.DMon)
			dlValid = true
			return
		}
		if dlValid {
			deadline = deadline.Add(st.Period)
		}
	}
	for _, act := range st.activations() {
		if !st.haveRes || act < st.firstRes || act > st.lastRes {
			rep.Skipped++
			continue
		}
		r, resolved := st.res[act]
		pub, hasPub := st.starts[act]
		end, hasEnd := st.ends[act]
		if act == st.firstRes {
			// Monitoring begins at the first reception, which is resolved
			// OK unconditionally: nothing to judge, but its timestamp seeds
			// the deadline recurrence.
			rep.Skipped++
			advance(false, pub, hasPub)
			continue
		}
		if st.tainted[act] {
			rep.Skipped++
			advance(resolved && r.Exception, pub, hasPub)
			continue
		}
		if !resolved {
			if hasPub || hasEnd {
				vs = append(vs, Violation{st.Name, act, KindUnresolved,
					"activation inside the supervised range never resolved"})
			}
			rep.Skipped++
			advance(!hasEnd, pub, hasPub)
			continue
		}
		rep.Checked++
		if r.Exception {
			rep.Exception++
		}
		if !hasEnd {
			rep.Lost++
			if !r.Exception {
				vs = append(vs, Violation{st.Name, act, KindLostNotDetected,
					fmt.Sprintf("no end event, resolved %v", r.Status)})
			}
		} else if dlValid {
			if end > deadline.Add(st.Grace) {
				rep.TrueLate++
				if !r.Exception {
					vs = append(vs, Violation{st.Name, act, KindFalseNegative,
						fmt.Sprintf("arrival %v past deadline %v + grace %v, resolved %v",
							sim.Duration(end), sim.Duration(deadline), st.Grace, r.Status)})
				}
			}
			if r.Exception && end <= deadline.Add(-st.Slack) {
				vs = append(vs, Violation{st.Name, act, KindFalsePositive,
					fmt.Sprintf("exception although arrival %v ≤ deadline %v − slack %v",
						sim.Duration(end), sim.Duration(deadline), st.Slack)})
			}
		}
		advance(r.Exception, pub, hasPub)
	}
	return rep, vs
}

func (st *SegmentTruth) checkLocal() (SegmentReport, []Violation) {
	rep := SegmentReport{Name: st.Name}
	var vs []Violation
	for _, act := range st.activations() {
		if !st.inScope(act) || st.tainted[act] {
			rep.Skipped++
			continue
		}
		r, resolved := st.res[act]
		_, hasStart := st.starts[act]
		if !resolved {
			if hasStart {
				vs = append(vs, Violation{st.Name, act, KindUnresolved,
					"started but never resolved by the monitor"})
			}
			rep.Skipped++
			continue
		}
		rep.Checked++
		if r.Exception {
			rep.Exception++
		}
		if !hasStart {
			// Propagated-in miss: no truth to compare latencies against.
			continue
		}
		tl, arrived := st.TrueLatency(act)
		if !arrived {
			rep.Lost++
			if !r.Exception {
				vs = append(vs, Violation{st.Name, act, KindLostNotDetected,
					fmt.Sprintf("no end event, resolved %v", r.Status)})
			}
			continue
		}
		// With hot-swapped deadlines the judging deadline is one of the
		// values in force near the start (see DeadlineChange); the FN check
		// uses the largest candidate, the FP check the smallest.
		dmonLo, dmonHi := st.dmonBounds(st.starts[act])
		if tl > dmonHi+st.Grace {
			rep.TrueLate++
			if !r.Exception {
				vs = append(vs, Violation{st.Name, act, KindFalseNegative,
					fmt.Sprintf("true latency %v > deadline %v + grace %v, resolved %v",
						tl, dmonHi, st.Grace, r.Status)})
			}
		}
		if r.Exception && tl <= dmonLo-st.Slack {
			vs = append(vs, Violation{st.Name, act, KindFalsePositive,
				fmt.Sprintf("exception although true latency %v ≤ deadline %v − slack %v",
					tl, dmonLo, st.Slack)})
		}
	}
	return rep, vs
}

// E2ETruth is the ground-truth record of one end-to-end chain.
type E2ETruth struct {
	Name string
	// Bound is the chain's end-to-end budget B_e2e; Tolerance widens it for
	// the all-OK invariant check.
	Bound     sim.Duration
	Tolerance sim.Duration

	segs    []*SegmentTruth
	starts  map[uint64]sim.Time
	ends    map[uint64]sim.Time
	latency *stats.Sample
}

// EndToEnd registers a chain truth record over the given segment truths:
// if every segment of an activation resolved OK, the true end-to-end
// latency must stay within Bound + Tolerance.
func (o *Oracle) EndToEnd(name string, bound, tolerance sim.Duration, segs ...*SegmentTruth) *E2ETruth {
	e := &E2ETruth{
		Name: name, Bound: bound, Tolerance: tolerance, segs: segs,
		starts:  make(map[uint64]sim.Time),
		ends:    make(map[uint64]sim.Time),
		latency: stats.NewSample(),
	}
	o.e2es = append(o.e2es, e)
	return e
}

// StartOnDevicePublish records the chain's source event.
func (e *E2ETruth) StartOnDevicePublish(dev *dds.Device) {
	dev.OnPublish = append(dev.OnPublish, func(s *dds.Sample) {
		if _, ok := e.starts[s.Activation]; !ok {
			e.starts[s.Activation] = s.PubTime
		}
	})
}

// EndOnDeliver records the chain's sink event.
func (e *E2ETruth) EndOnDeliver(sub *dds.Subscription) {
	prependDeliver(sub, func(s *dds.Sample) {
		if _, ok := e.ends[s.Activation]; !ok {
			e.ends[s.Activation] = s.RecvTime
		}
	})
}

// Latencies returns the true end-to-end latency sample accumulated by
// Check.
func (e *E2ETruth) Latencies() *stats.Sample { return e.latency }

func (e *E2ETruth) check() []Violation {
	var vs []Violation
	acts := make([]uint64, 0, len(e.starts))
	for a := range e.starts {
		acts = append(acts, a)
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i] < acts[j] })
	for _, act := range acts {
		end, ok := e.ends[act]
		if !ok {
			continue
		}
		tl := end.Sub(e.starts[act])
		e.latency.AddDuration(tl)
		allOK := true
		for _, st := range e.segs {
			if !st.inScope(act) || st.tainted[act] {
				allOK = false
				break
			}
			r, resolved := st.res[act]
			if !resolved || r.Status != monitor.StatusOK {
				allOK = false
				break
			}
		}
		if allOK && tl > e.Bound+e.Tolerance {
			vs = append(vs, Violation{e.Name, act, KindE2EBound,
				fmt.Sprintf("all segments OK but true e2e latency %v > bound %v + tolerance %v",
					tl, e.Bound, e.Tolerance)})
		}
	}
	return vs
}

// Report is the outcome of a Check pass.
type Report struct {
	Segments   []SegmentReport
	Violations []Violation
}

// Ok reports whether every oracle invariant held.
func (r Report) Ok() bool { return len(r.Violations) == 0 }

// Segment returns the report of the named segment.
func (r Report) Segment(name string) (SegmentReport, bool) {
	for _, s := range r.Segments {
		if s.Name == name {
			return s, true
		}
	}
	return SegmentReport{}, false
}

// Summary renders the per-segment cross-check table and all violations.
func (r Report) Summary() string {
	var b strings.Builder
	for _, s := range r.Segments {
		fmt.Fprintf(&b, "%s\n", s)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "VIOLATION %s\n", v)
	}
	return b.String()
}

// Check cross-checks every watched segment and chain. Call it after the
// kernel ran dry.
func (o *Oracle) Check() Report {
	var rep Report
	for _, st := range o.segs {
		sr, vs := st.check()
		rep.Segments = append(rep.Segments, sr)
		rep.Violations = append(rep.Violations, vs...)
	}
	for _, e := range o.e2es {
		rep.Violations = append(rep.Violations, e.check()...)
	}
	return rep
}

// InterArrivalAudit quantifies what an inter-arrival supervisor saw of the
// true deadline violations on a segment — the §IV-B comparison.
type InterArrivalAudit struct {
	// TrueViolations counts activations whose start fell inside the audit
	// window and whose true latency exceeded the segment deadline (or that
	// never arrived).
	TrueViolations int
	// Detections counts inter-arrival timer expiries inside the window.
	Detections int
}

// AuditInterArrival compares a segment's ground truth against an
// inter-arrival supervisor over the [from, until) window. The expected
// outcome on consecutive-miss patterns is Detections ≪ TrueViolations: the
// inter-arrival timer is re-armed by every arrival, so periodic-but-late
// streams and long outages collapse into few (or zero) detections.
func AuditInterArrival(st *SegmentTruth, m *monitor.InterArrivalMonitor, from, until sim.Time) InterArrivalAudit {
	var a InterArrivalAudit
	for act, start := range st.starts {
		if start < from || start >= until {
			continue
		}
		tl, arrived := st.TrueLatency(act)
		if !arrived || tl > st.DMon {
			a.TrueViolations++
		}
	}
	for _, t := range m.Detections() {
		if t >= from && t < until {
			a.Detections++
		}
	}
	return a
}

// ForPerception wires an oracle over the full-chain perception system: one
// truth record per monitored segment (watched against its monitor) plus the
// front end-to-end chain. The tolerance bands are derived from the system
// configuration and the campaign's worst injected clock error, per §IV-B:
// remote pessimism is bounded by J^a + 2ε.
//
// The system must be built with FullChain monitoring and not yet run.
func ForPerception(sys *perception.System, camp Campaign) *Oracle {
	cfg := sys.Cfg
	if !cfg.Monitored || !cfg.FullChain {
		panic("faultinject: the oracle needs a monitored full-chain perception system")
	}
	o := NewOracle(sys.K)
	horizon := sim.Duration(cfg.Frames) * cfg.Period
	epsErr := cfg.ClockEpsilon + camp.MaxClockError(horizon)
	// Remote bands around the replicated deadline recurrence: the sender's
	// timestamp and the receiver's timer conversion each carry one clock
	// error, plus a margin for the timeout routine's dispatch and entry.
	remSlack := 2*epsErr + 2*sim.Millisecond
	remGrace := remSlack
	// Local segments measure start and end on the same clock, so static
	// offsets cancel — but the ε random walk moves between the two reads,
	// and an injected step can land between them.
	locSlack := 2*epsErr + 200*sim.Microsecond
	locGrace := 2*epsErr + 5*sim.Millisecond
	if cfg.RemoteVariant == monitor.VariantDDSContext {
		// The DDS-context variant runs timeout routines on the middleware
		// thread; under interference its exception entry latency grows to
		// milliseconds (Fig. 12), during which a late sample may still be
		// accepted. Soundness holds only up to that entry latency.
		remGrace += 100 * sim.Millisecond
	}

	front := o.Segment(perception.SegFrontRemote, cfg.RemoteDeadline, cfg.Period, remSlack, remGrace, true)
	front.StartOnDevicePublish(sys.FrontLidar)
	front.EndOnDeliver(sys.FusionFrontSub)
	front.Watch(sys.RemFront)

	rear := o.Segment(perception.SegRearRemote, cfg.RemoteDeadline, cfg.Period, remSlack, remGrace, true)
	rear.StartOnDevicePublish(sys.RearLidar)
	rear.EndOnDeliver(sys.FusionRearSub)
	rear.Watch(sys.RemRear)

	fusionFront := o.Segment(perception.SegFusionFront, cfg.LocalDeadline/2, cfg.Period, locSlack, locGrace, false)
	fusionFront.StartOnDeliver(sys.FusionFrontSub)
	fusionFront.EndOnPublish(sys.FusedPub)
	fusionFront.Watch(sys.FusionFront)

	fusionRear := o.Segment(perception.SegFusionRear, cfg.LocalDeadline/2, cfg.Period, locSlack, locGrace, false)
	fusionRear.StartOnDeliver(sys.FusionRearSub)
	fusionRear.EndOnPublish(sys.FusedPub)
	fusionRear.Watch(sys.FusionRear)

	fused := o.Segment(perception.SegFusedRemote, cfg.RemoteDeadline, cfg.Period, remSlack, remGrace, true)
	fused.StartOnPublish(sys.FusedPub)
	fused.EndOnDeliver(sys.ClassifierSub)
	fused.Watch(sys.RemFused)

	objects := o.Segment(perception.SegObjectsLocal, cfg.LocalDeadline, cfg.Period, locSlack, locGrace, false)
	objects.StartOnDeliver(sys.ClassifierSub)
	objects.EndOnDeliver(sys.PlanObjectsSub)
	objects.Watch(sys.SegObjects)

	ground := o.Segment(perception.SegGroundLocal, cfg.LocalDeadline, cfg.Period, locSlack, locGrace, false)
	ground.StartOnDeliver(sys.ClassifierSub)
	ground.EndOnDeliver(sys.PlanGroundSub)
	ground.Watch(sys.SegGround)

	// The front chain of Fig. 2 (same bound as perception.Build). The
	// segment latencies compose contiguously, so the tolerance is the sum
	// of the per-segment bands.
	be2e := 2*cfg.RemoteDeadline + cfg.LocalDeadline/2 + cfg.LocalDeadline + 4*sim.Millisecond
	// A remote activation can resolve OK with an absolute latency of up to
	// DMon plus the sender's backward activation jitter (the contract's
	// bounded optimism), so the chain tolerance adds the worst upstream
	// publication jitter (device activation jitter, link jitter, execution
	// variation) on top of the per-segment bands.
	e2eTol := 2*remGrace + 2*locGrace + perception.DeviceJitterMax + 25*sim.Millisecond
	e2e := o.EndToEnd("e2e/front-objects", be2e, e2eTol, front, fusionFront, fused, objects)
	e2e.StartOnDevicePublish(sys.FrontLidar)
	e2e.EndOnDeliver(sys.PlanObjectsSub)
	return o
}
