// Sweep is the sharded campaign engine: the chaos matrices (campaign × seed
// × monitor variant) are expressed as plain combo lists and fanned out over
// the parallel worker pool. Every combo builds its own kernel, RNG streams
// and telemetry from its seed — nothing is shared between shards — and the
// results are merged in combo order, so a parallel sweep produces output
// byte-identical to a serial one.
package faultinject

import (
	"fmt"
	"strings"

	"chainmon/internal/monitor"
	"chainmon/internal/parallel"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
)

// chaosFrames keeps a single campaign run at 12 s of virtual time.
const chaosFrames = 120

// interArrivalTMax is the supervision bound of the baseline inter-arrival
// monitor attached to every chaos run: period plus enough headroom that the
// nominal activation and link jitter never trips it (the paper's t_max
// dilemma — any tighter bound false-positives on jitter).
const interArrivalTMax = 135 * sim.Millisecond

// Run bundles one fully executed campaign run: the system under test, the
// ground-truth oracle, its cross-check report and the baseline inter-arrival
// supervisor.
type Run struct {
	Sys    *perception.System
	Oracle *Oracle
	Report Report
	IAM    *monitor.InterArrivalMonitor
}

// Combo is one cell of a sweep: a campaign run at a seed under a monitor
// variant, optionally with scheduled deadline actuations riding along.
type Combo struct {
	Campaign Campaign
	Seed     int64
	Variant  monitor.RemoteVariant
	// Swaps are deadline actuations staged mid-run through the hot-swappable
	// budget table, in staging order. The oracle is told about each one, so
	// its soundness checks stay exact across the epoch boundaries.
	Swaps []BudgetSwap
}

// BudgetSwap schedules one deadline actuation: at virtual time At, the
// named local segment's monitored deadline is re-staged to DMon.
type BudgetSwap struct {
	At      Duration
	Segment string
	DMon    Duration
}

// String renders the combo as a stable sweep-cell label.
func (c Combo) String() string {
	return fmt.Sprintf("%s/seed%d/%s", c.Campaign.Name, c.Seed, c.Variant)
}

// RunCombo builds a full-chain perception system for the combo's seed,
// injects the campaign, wires the ground-truth oracle and runs to
// completion. Each call constructs everything from the seed, so combos can
// run on any goroutine in any order.
func RunCombo(c Combo) (*Run, error) {
	cfg := perception.DefaultConfig()
	cfg.Seed = c.Seed
	cfg.Frames = chaosFrames
	cfg.FullChain = true
	cfg.RemoteVariant = c.Variant
	sys := perception.Build(cfg)

	iam := monitor.NewInterArrivalMonitor(sys.ClassifierSub, interArrivalTMax)
	drain := sim.Time(cfg.Frames) * sim.Time(cfg.Period)
	sys.K.At(drain.Add(5*sim.Second), iam.Stop)

	orc := ForPerception(sys, c.Campaign)
	if len(c.Swaps) > 0 {
		// Actuations go through the same staged table a live controller
		// uses; the oracle mirrors each one into its deadline timeline.
		table := monitor.NewBudgetTable()
		sys.MonECU2.AttachBudget(table)
		for _, sw := range c.Swaps {
			sw := sw
			sys.K.At(sim.Time(sw.At), func() {
				table.Stage([]monitor.DeadlineUpdate{{Segment: sw.Segment, DMon: sim.Duration(sw.DMon)}})
			})
			orc.DeadlineChange(sw.Segment, sim.Time(sw.At), sim.Duration(sw.DMon))
		}
	}
	if err := NewInjector(sim.NewRNG(c.Seed)).Apply(c.Campaign, TargetsOf(sys)); err != nil {
		return nil, fmt.Errorf("apply campaign %q: %w", c.Campaign.Name, err)
	}
	sys.Run()
	return &Run{Sys: sys, Oracle: orc, Report: orc.Check(), IAM: iam}, nil
}

// SweepItem is the retained outcome of one combo: the oracle report plus any
// sanity-check or application error. The system itself is discarded on the
// worker, so a thousand-combo sweep does not hold a thousand kernels alive.
type SweepItem struct {
	Combo  Combo
	Report Report
	// Sanity is the campaign's did-the-fault-bite check result (nil when the
	// campaign has none or it passed).
	Sanity error
	// Err is a combo construction/application failure.
	Err error
}

// Ok reports whether the combo ran, its oracle invariants held and its
// sanity check passed.
func (it SweepItem) Ok() bool { return it.Err == nil && it.Sanity == nil && it.Report.Ok() }

// SweepArena is the per-worker reusable state of a sweep: everything a
// combo needs that does not depend on the combo itself. Today that is the
// campaign-name → sanity-check table, which used to be rebuilt by walking
// AllCampaigns() once per combo — O(#campaigns) allocations per cell that
// the arena pays once per worker. Combo-dependent state (kernel, RNG
// streams, telemetry) is intentionally NOT in the arena: rebuilding it from
// the seed is what keeps shards order-independent.
type SweepArena struct {
	sanity map[string]func(*Run) error
}

// NewSweepArena builds the per-worker arena (one map walk of the campaign
// set).
func NewSweepArena() *SweepArena {
	a := &SweepArena{sanity: make(map[string]func(*Run) error)}
	for _, e := range AllCampaigns() {
		if e.Sanity != nil {
			a.sanity[e.Campaign.Name] = e.Sanity
		}
	}
	return a
}

// RunCombo executes one combo reusing the arena's lookup state; see the
// package-level RunCombo for the combo semantics.
func (a *SweepArena) RunCombo(c Combo) SweepItem {
	it := SweepItem{Combo: c}
	run, err := RunCombo(c)
	if err != nil {
		it.Err = err
		return it
	}
	it.Report = run.Report
	if c.Variant == monitor.VariantMonitorThread {
		if sanity := a.sanity[c.Campaign.Name]; sanity != nil {
			it.Sanity = sanity(run)
		}
	}
	return it
}

// RunSweep executes every combo, fanning out over the given worker count
// (≤ 0: GOMAXPROCS), and returns the outcomes in combo order. Sanity checks
// run only for monitor-thread combos, matching the historical matrix tests
// (dds-context runs check the soundness contract alone). Each worker reuses
// one SweepArena across all the combos it claims.
func RunSweep(combos []Combo, workers int) []SweepItem {
	return parallel.MapSliceArena(workers, combos, NewSweepArena,
		func(a *SweepArena, shard int, c Combo) SweepItem {
			return a.RunCombo(c)
		})
}

// MergedSummary renders the sweep outcome as one deterministic text report:
// one block per combo, in combo order. Serial and parallel sweeps of the
// same combo list produce byte-identical output.
func MergedSummary(items []SweepItem) string {
	var b strings.Builder
	for _, it := range items {
		status := "ok"
		if !it.Ok() {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "=== %s [%s]\n", it.Combo, status)
		if it.Err != nil {
			fmt.Fprintf(&b, "error: %v\n", it.Err)
			continue
		}
		if it.Sanity != nil {
			fmt.Fprintf(&b, "sanity: %v\n", it.Sanity)
		}
		b.WriteString(it.Report.Summary())
	}
	return b.String()
}

// MatrixEntry pairs a campaign with its sanity check: an assertion that the
// campaign actually bit (faults that do nothing would make the
// zero-false-negative assertion vacuous).
type MatrixEntry struct {
	Campaign Campaign
	Sanity   func(*Run) error
}

func sec(n float64) Duration { return Duration(n * float64(sim.Second)) }

// ChaosCampaigns is the core fault matrix: one campaign per original fault
// type plus a combined one.
func ChaosCampaigns() []MatrixEntry {
	return []MatrixEntry{
		{
			// Correlated loss bursts on the inter-ECU link: the fused
			// remote segment must detect every lost sample.
			Campaign: Campaign{Name: "burst-loss", Faults: []Spec{{
				Type: TypeBurstLoss, From: sec(2), Until: sec(10),
				LinkFrom: "ecu1", LinkTo: "ecu2",
				PEnterBurst: 0.05, PExitBurst: 0.3,
			}}},
			Sanity: func(run *Run) error {
				if s, _ := run.Report.Segment(perception.SegFusedRemote); s.Lost == 0 {
					return fmt.Errorf("burst-loss campaign lost nothing on %s", s.Name)
				}
				return nil
			},
		},
		{
			// A constant latency shift beyond the remote deadline: arrivals
			// stay periodic while every sample is late — the consecutive-miss
			// pattern of §IV-B.
			Campaign: Campaign{Name: "latency-shift", Faults: []Spec{{
				Type: TypeLatencySpike, From: sec(1),
				LinkFrom: "ecu1", LinkTo: "ecu2",
				Delay: Duration(30 * sim.Millisecond),
			}}},
			Sanity: func(run *Run) error {
				if s, _ := run.Report.Segment(perception.SegFusedRemote); s.Exception < 50 {
					return fmt.Errorf("latency-shift: expected ≥50 detections, got %+v", s)
				}
				return nil
			},
		},
		{
			// A mis-ranked grandmaster steps the ECU1 clock by more than the
			// remote deadline: the front/rear remote monitors must fire (the
			// perceived latency includes the clock error), and the oracle's
			// widened slack band must absorb the pessimism.
			Campaign: Campaign{Name: "clock-step", Faults: []Spec{{
				Type: TypeClockStep, From: sec(3), Until: sec(9),
				Clock: "ecu1", Offset: Duration(25 * sim.Millisecond),
			}}},
			Sanity: func(run *Run) error {
				if s, _ := run.Report.Segment(perception.SegFrontRemote); s.Exception == 0 {
					return fmt.Errorf("clock-step: expected detections on %s", s.Name)
				}
				return nil
			},
		},
		{
			// An unmodelled frequency error on the front lidar clock: stays
			// within the widened bands, no verdict may flip.
			Campaign: Campaign{Name: "clock-drift", Faults: []Spec{{
				Type: TypeClockDrift, From: sec(2), Until: sec(10),
				Clock: "front-lidar", DriftPPM: 500,
			}}},
		},
		{
			// Transient ECU2 overload: high-priority interference starves the
			// receive path and the executors; the monitor thread (highest
			// priority) must keep detecting.
			Campaign: Campaign{Name: "overload", Faults: []Spec{{
				Type: TypeOverload, From: sec(4), Until: sec(7),
				ECU: "ecu2", Utilization: 0.9,
			}}},
			Sanity: func(run *Run) error {
				total := 0
				for _, s := range run.Report.Segments {
					total += s.Exception
				}
				if total == 0 {
					return fmt.Errorf("overload campaign caused no detections at all")
				}
				return nil
			},
		},
		{
			// The front lidar blanks out for 1.5 s: the front remote monitor
			// must convert the sequence gap into per-activation exceptions.
			Campaign: Campaign{Name: "sensor-dropout", Faults: []Spec{{
				Type: TypeSensorDropout, From: sec(5), Until: sec(6.5),
				Device: "front-lidar",
			}}},
			Sanity: func(run *Run) error {
				if s, _ := run.Report.Segment(perception.SegFrontRemote); s.Exception < 10 {
					return fmt.Errorf("sensor-dropout: expected ≥10 detections on %s, got %d", s.Name, s.Exception)
				}
				return nil
			},
		},
		{
			// Everything at once, at survivable magnitudes.
			Campaign: Campaign{Name: "kitchen-sink", Faults: []Spec{
				{Type: TypeBurstLoss, From: sec(2), Until: sec(8),
					LinkFrom: "front-lidar", LinkTo: "ecu1",
					PEnterBurst: 0.08, PExitBurst: 0.4},
				{Type: TypeClockStep, From: sec(2), Until: sec(8),
					Clock: "ecu1", Offset: Duration(sim.Millisecond)},
				{Type: TypeLatencySpike, From: sec(3), Until: sec(5),
					LinkFrom: "ecu1", LinkTo: "ecu2",
					Delay: Duration(5 * sim.Millisecond), DelayJitter: Duration(5 * sim.Millisecond)},
				{Type: TypeOverload, From: sec(6), Until: sec(8),
					ECU: "ecu2", Utilization: 0.5},
			}},
			Sanity: func(run *Run) error {
				if s, _ := run.Report.Segment(perception.SegFrontRemote); s.Lost == 0 && s.Exception == 0 {
					return fmt.Errorf("kitchen-sink: front link bursts had no effect")
				}
				return nil
			},
		},
	}
}

// ReorderEntry holds inter-ECU messages 150 ms — longer than the 100 ms
// period, so later fused frames overtake the held one and arrivals leave
// FIFO order. The remote monitor must treat the stale arrival as already
// resolved (its timeout fired first) and the verdicts must stay sound.
func ReorderEntry() MatrixEntry {
	return MatrixEntry{
		Campaign: Campaign{Name: "reorder", Faults: []Spec{{
			Type: TypeReorder, From: Duration(2 * sim.Second), Until: Duration(10 * sim.Second),
			LinkFrom: "ecu1", LinkTo: "ecu2",
			HoldProb: 0.15, Delay: Duration(150 * sim.Millisecond),
		}}},
		Sanity: func(run *Run) error {
			if held := run.Sys.Domain.Link("ecu1", "ecu2").Held(); held == 0 {
				return fmt.Errorf("reorder campaign held no messages")
			}
			if s, _ := run.Report.Segment(perception.SegFusedRemote); s.Exception == 0 {
				return fmt.Errorf("reorder: a 150ms hold beyond the 20ms remote deadline must cause detections on %s", s.Name)
			}
			return nil
		},
	}
}

// DuplicateEntry delivers ~20% of inter-ECU messages twice, the copy 5 ms
// after the original. The first copy resolves the activation; the second
// must be discarded without perturbing any verdict.
func DuplicateEntry() MatrixEntry {
	return MatrixEntry{
		Campaign: Campaign{Name: "duplicate", Faults: []Spec{{
			Type: TypeDuplicate, From: Duration(2 * sim.Second), Until: Duration(10 * sim.Second),
			LinkFrom: "ecu1", LinkTo: "ecu2",
			DupProb: 0.2, Delay: Duration(5 * sim.Millisecond),
		}}},
		Sanity: func(run *Run) error {
			if dup := run.Sys.Domain.Link("ecu1", "ecu2").Duplicated(); dup == 0 {
				return fmt.Errorf("duplicate campaign duplicated no messages")
			}
			return nil
		},
	}
}

// PTPAsymEntry steps the ECU1 clock back and the ECU2 clock forward by 12 ms
// each: the per-clock error stays within the oracle band, but timestamps
// crossing the inter-ECU link look 24 ms late — beyond the 20 ms remote
// deadline, so the fused remote monitor must fire throughout the window
// while the lidar→ECU1 segments (which look early) stay quiet.
func PTPAsymEntry() MatrixEntry {
	return MatrixEntry{
		Campaign: Campaign{Name: "ptp-asym", Faults: []Spec{{
			Type: TypePTPAsym, From: sec(3), Until: sec(9),
			Clock: "ecu1", ClockPeer: "ecu2",
			Offset: Duration(-12 * sim.Millisecond),
		}}},
		Sanity: func(run *Run) error {
			if s, _ := run.Report.Segment(perception.SegFusedRemote); s.Exception < 10 {
				return fmt.Errorf("ptp-asym: a 24ms relative clock error must trip the fused remote monitor, got %+v", s)
			}
			return nil
		},
	}
}

// ExecutorStarvationEntry suspends the detection node's executor thread for
// 2.5 s: non-ground clouds pile up unprocessed while the rest of ECU2 stays
// schedulable, so the objects segment must miss its local deadline frame
// after frame even though the processor shows no overload (the failure mode
// a utilization watchdog cannot see).
func ExecutorStarvationEntry() MatrixEntry {
	return MatrixEntry{
		Campaign: Campaign{Name: "executor-starvation", Faults: []Spec{{
			Type: TypeExecutorStarvation, From: sec(4), Until: sec(6.5),
			Node: "detection",
		}}},
		Sanity: func(run *Run) error {
			if s, _ := run.Report.Segment(perception.SegObjectsLocal); s.Exception < 10 {
				return fmt.Errorf("executor-starvation: a 2.5s executor stall must miss ≥10 local deadlines on %s, got %d", s.Name, s.Exception)
			}
			return nil
		},
	}
}

// GMFailoverEntry injects a grandmaster failover on the ECU1 clock: a 25 ms
// step at 3 s, slewed back into sync by 9 s. The lidar→fusion remote
// monitors must fire while the error exceeds the 20 ms remote deadline and
// fall silent as the servo re-converges; the oracle's step-derived band
// must absorb the whole transient.
func GMFailoverEntry() MatrixEntry {
	return MatrixEntry{
		Campaign: Campaign{Name: "gm-failover", Faults: []Spec{{
			Type: TypeGMFailover, From: sec(3), Until: sec(9),
			Clock: "ecu1", Offset: Duration(25 * sim.Millisecond),
		}}},
		Sanity: func(run *Run) error {
			if s, _ := run.Report.Segment(perception.SegFrontRemote); s.Exception == 0 {
				return fmt.Errorf("gm-failover: a 25ms step must trip %s before the servo re-converges", s.Name)
			}
			return nil
		},
	}
}

// AllCampaigns is the full campaign set: the core matrix plus reorder,
// duplicate, the asymmetric PTP offset, the executor stall and the
// grandmaster failover.
func AllCampaigns() []MatrixEntry {
	entries := ChaosCampaigns()
	return append(entries, ReorderEntry(), DuplicateEntry(), PTPAsymEntry(),
		ExecutorStarvationEntry(), GMFailoverEntry())
}

// cross builds the campaign-major combo grid, pre-sized to its exact length.
func cross(entries []MatrixEntry, seeds []int64, v monitor.RemoteVariant) []Combo {
	combos := make([]Combo, 0, len(entries)*len(seeds))
	for _, e := range entries {
		for _, seed := range seeds {
			combos = append(combos, Combo{Campaign: e.Campaign, Seed: seed, Variant: v})
		}
	}
	return combos
}

// seedSeq returns n seeds 11, 22, 33, … matching the historical matrices.
func seedSeq(n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(11 * (i + 1))
	}
	return seeds
}

// Matrix102 is the historical nightly matrix: the nine pre-PTP campaigns ×
// eleven seeds plus three dds-context runs — 102 combos. It is kept stable
// as the reference workload of the parallel-speedup benchmark
// (BENCH_parallel.json compares serial vs parallel wall time on exactly
// this list).
func Matrix102() []Combo {
	entries := append(ChaosCampaigns(), ReorderEntry(), DuplicateEntry())
	combos := cross(entries, seedSeq(11), monitor.VariantMonitorThread)
	for _, e := range []MatrixEntry{ReorderEntry(), DuplicateEntry(), ChaosCampaigns()[0]} {
		combos = append(combos, Combo{Campaign: e.Campaign, Seed: 11, Variant: monitor.VariantDDSContext})
	}
	return combos
}

// PRMatrix is the 23-combo matrix of the PR test job: the seven core
// campaigns × three seeds plus the two dds-context-safe campaigns under
// dds-context.
func PRMatrix() []Combo {
	combos := cross(ChaosCampaigns(), seedSeq(3), monitor.VariantMonitorThread)
	for _, e := range ChaosCampaigns()[:2] { // burst-loss, latency-shift
		combos = append(combos, Combo{Campaign: e.Campaign, Seed: 11, Variant: monitor.VariantDDSContext})
	}
	return combos
}

// GrownNightlyMatrix is the ~1200-combo sweep the parallel engine makes
// affordable: all twelve campaigns (including ptp-asym, executor-starvation
// and gm-failover) × ninety-nine seeds plus ten dds-context runs drawn from
// the campaigns that leave the middleware thread schedulable.
func GrownNightlyMatrix() []Combo {
	combos := cross(AllCampaigns(), seedSeq(99), monitor.VariantMonitorThread)
	ddsSafe := []MatrixEntry{ReorderEntry(), DuplicateEntry(), ChaosCampaigns()[0], ChaosCampaigns()[1]}
	for _, seed := range seedSeq(2) {
		for _, e := range ddsSafe {
			combos = append(combos, Combo{Campaign: e.Campaign, Seed: seed, Variant: monitor.VariantDDSContext})
		}
	}
	// 12×99 + 2×4 = 1196; top up with the historical dds-context pair.
	combos = append(combos,
		Combo{Campaign: ReorderEntry().Campaign, Seed: 33, Variant: monitor.VariantDDSContext},
		Combo{Campaign: DuplicateEntry().Campaign, Seed: 33, Variant: monitor.VariantDDSContext},
	)
	return combos
}

// Matrix10K is the 10000-combo nightly sweep the zero-alloc hot path makes
// affordable: all twelve campaigns × 830 seeds (9960 monitor-thread combos)
// plus the four dds-context-safe campaigns × ten seeds. At ~8 ms per combo
// it stays within a nightly CI budget even under -race.
func Matrix10K() []Combo {
	combos := cross(AllCampaigns(), seedSeq(830), monitor.VariantMonitorThread)
	ddsSafe := []MatrixEntry{ReorderEntry(), DuplicateEntry(), ChaosCampaigns()[0], ChaosCampaigns()[1]}
	for _, seed := range seedSeq(10) {
		for _, e := range ddsSafe {
			combos = append(combos, Combo{Campaign: e.Campaign, Seed: seed, Variant: monitor.VariantDDSContext})
		}
	}
	return combos
}
