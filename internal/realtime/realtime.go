// Package realtime drives the shared monitor core on the wall-clock
// runtime: a real producer goroutine posts start/end events for a
// quickstart-shaped two-segment workload, the walltime.Loop monitor
// goroutine drains rings and fires temporal exceptions at real deadlines,
// and live metrics are exported through the lock-free telemetry registry —
// safe to scrape over HTTP *while* the run is in progress (cmd/chainmon
// -realtime -metrics-addr).
//
// This is the "two timebases, one core" demonstration: the drain order,
// timeout queue and Algorithm 2 verdicts here are byte-for-byte the same
// code (internal/monitor on internal/runtime) the virtual-time experiments
// validate; only the clock underneath differs.
package realtime

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"chainmon/internal/livestats"
	"chainmon/internal/monitor"
	rt "chainmon/internal/runtime"
	"chainmon/internal/runtime/walltime"
	"chainmon/internal/telemetry"
	"chainmon/internal/weaklyhard"
)

// Segment names of the wall-clock scenario, shaped like the evaluation's
// ECU2 pair: both segments share their start event; "objects" always ends
// in time, "ground" is stalled past its deadline every LateEvery-th frame.
const (
	SegObjects = "rt/objects"
	SegGround  = "rt/ground"
)

// Config parameterizes a wall-clock run.
type Config struct {
	// Frames is the number of activations the producer emits.
	Frames int
	// Period is the real inter-activation period.
	Period time.Duration
	// Deadline is d_mon of both segments.
	Deadline time.Duration
	// Work is the nominal per-frame processing time before the end events
	// are posted; it must stay well below Deadline.
	Work time.Duration
	// LateEvery stalls every n-th frame's ground end event until after the
	// deadline (0 disables the fault).
	LateEvery int
	// RingCap is the per-segment ring capacity (power of two).
	RingCap int
	// Seed feeds the monitor's derived RNG streams (costs are constant on
	// the wall clock, so it only matters for future extensions).
	Seed int64
	// Live, when non-nil, receives the run's live health state: per-segment
	// latency sketches and (m,k) SLO burn tracking, plus a chain-level "rt"
	// scope driven by the ground segment (the verdict-bearing end of the
	// shared-start pair). Safe to scrape (Health/PublishMetrics) while the
	// run is in progress.
	Live *livestats.Set
	// Swaps are scripted mid-run deadline actuations: each is staged on the
	// monitor's budget table immediately before the named frame's start
	// events are posted. Because every scan applies staged budgets before
	// draining, the named frame and all later ones are supervised under the
	// new deadline on both timebases — which is what extends the
	// cross-timebase equivalence across actuations.
	Swaps []Swap
	// Budget, when non-nil, is attached to the monitor so an external
	// controller (cmd/chainmon -adaptive) can hot-swap deadlines while the
	// run is in progress. Swaps stage through the same table. When nil and
	// Swaps are present, Run creates a private table.
	Budget *monitor.BudgetTable
}

// Swap is one scripted deadline actuation of a wall-clock run.
type Swap struct {
	Frame   int           // staged before this frame's start events
	Segment string        // SegObjects or SegGround
	DMon    time.Duration // the new monitored deadline
}

// DefaultConfig is sized for a CI smoke run: 50 frames at 20 ms ≈ one
// second of wall time, with every 10th frame missing its 10 ms deadline.
func DefaultConfig() Config {
	return Config{
		Frames:    50,
		Period:    20 * time.Millisecond,
		Deadline:  10 * time.Millisecond,
		Work:      2 * time.Millisecond,
		LateEvery: 10,
		RingCap:   1024,
		Seed:      1,
	}
}

// Validate rejects configurations that cannot produce a meaningful run.
func (c Config) Validate() error {
	if c.Frames <= 0 {
		return fmt.Errorf("realtime: frames must be positive, got %d", c.Frames)
	}
	if c.Period <= 0 || c.Deadline <= 0 {
		return fmt.Errorf("realtime: period and deadline must be positive")
	}
	if c.Deadline >= c.Period {
		return fmt.Errorf("realtime: deadline %v must be below the period %v (a late end is posted one period after its start)", c.Deadline, c.Period)
	}
	if c.Work >= c.Deadline {
		return fmt.Errorf("realtime: nominal work %v must be below the deadline %v", c.Work, c.Deadline)
	}
	if c.RingCap&(c.RingCap-1) != 0 || c.RingCap <= 0 {
		return fmt.Errorf("realtime: ring capacity %d must be a power of two", c.RingCap)
	}
	for _, sw := range c.Swaps {
		if sw.Frame < 0 || sw.Frame >= c.Frames {
			return fmt.Errorf("realtime: swap frame %d outside the run's %d frames", sw.Frame, c.Frames)
		}
		if sw.Segment != SegObjects && sw.Segment != SegGround {
			return fmt.Errorf("realtime: swap names unknown segment %q", sw.Segment)
		}
		if sw.DMon <= 0 || sw.DMon >= c.Period {
			return fmt.Errorf("realtime: swap deadline %v must be in (0, period %v) — a late end is posted one period after its start", sw.DMon, c.Period)
		}
	}
	return nil
}

// swapsFor collects the updates staged before frame act's start events, in
// declaration order.
func (c Config) swapsFor(act int) []monitor.DeadlineUpdate {
	var ups []monitor.DeadlineUpdate
	for _, sw := range c.Swaps {
		if sw.Frame == act {
			ups = append(ups, monitor.DeadlineUpdate{Segment: sw.Segment, DMon: sw.DMon})
		}
	}
	return ups
}

// SegmentResult is one segment's verdict accounting after the run.
type SegmentResult struct {
	Name        string
	OK          int
	Missed      int
	Recovered   int
	Resolutions []monitor.Resolution
}

// Result is the outcome of one wall-clock run.
type Result struct {
	Elapsed  time.Duration
	Frames   int
	Scans    uint64
	Segments []SegmentResult
}

// Summary renders the result as the CLI report.
func (r Result) Summary(w io.Writer) {
	fmt.Fprintf(w, "wall-clock run: %d frames in %v (%d monitor passes)\n",
		r.Frames, r.Elapsed.Round(time.Millisecond), r.Scans)
	for _, s := range r.Segments {
		fmt.Fprintf(w, "  %-12s ok=%d missed=%d recovered=%d\n",
			s.Name, s.OK, s.Missed, s.Recovered)
	}
}

// Run executes the wall-clock scenario. The caller's goroutine is the
// producer (the instrumented application threads of the paper); the monitor
// runs on its own OS-locked goroutine. sink receives live metrics and may be
// scraped concurrently throughout; nil leaves the run dark.
//
// With a full sink (sink.Rec != nil) the run is also flow-traced: the
// producer emulates the pipeline hops of one frame — dds-send on
// "rt/producer", net-send on "rt/net", dds-recv back on "rt/producer" —
// before posting the start events, all tagged with the frame's flow identity
// in scope "rt"; the monitor's ring-post, arm/fire and verdict events carry
// the same flow, so the converted trace links dds-send → net → dds-recv →
// verdict for every activation. Per-segment verdict counters then come from
// the monitor's own telemetry attach (registering them here too would
// double-count: the registry hands out one shared counter per family+labels).
// A registry-only sink (sink.Rec == nil) keeps the previous metrics-only
// behavior.
func Run(cfg Config, sink *telemetry.Sink) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}

	clock := walltime.NewClock()
	sem := walltime.NewSem()
	mon := monitor.NewWallclockMonitor(clock, sem,
		func() rt.EventRing { return walltime.NewRing(cfg.RingCap) }, cfg.Seed)
	budget := cfg.Budget
	if budget == nil && len(cfg.Swaps) > 0 {
		budget = monitor.NewBudgetTable()
	}
	if budget != nil {
		mon.AttachBudget(budget)
	}

	traced := sink != nil && sink.Rec != nil
	var frames *telemetry.Counter
	var manScans *telemetry.Counter
	var manDepth *telemetry.Gauge
	if sink != nil {
		frames = sink.Reg.Counter("chainmon_realtime_frames_total",
			"Activations emitted by the wall-clock producer.")
	}
	if sink != nil && !traced {
		manScans = sink.Reg.Counter("chainmon_monitor_scans_total",
			"Monitor-goroutine drain passes.")
		manDepth = sink.Reg.Gauge("chainmon_monitor_timeout_queue_depth",
			"Armed timeouts after a monitor pass.")
	}

	// Flow tracing: both segments describe the same frame stream, so they
	// share flow scope "rt" — one flow per activation, forking into the two
	// segments (the evaluation's shared start event).
	var scope uint8
	var prodTrack, netTrack *telemetry.Track
	var frameLbl, linkLbl uint16
	if traced {
		sink.Rec.BindFlow(SegObjects, "rt")
		sink.Rec.BindFlow(SegGround, "rt")
		scope = sink.Rec.FlowScope(SegObjects)
		prodTrack = sink.Rec.Track("rt/producer")
		netTrack = sink.Rec.Track("rt/net")
		frameLbl = sink.Rec.Intern("rt/frames")
		linkLbl = sink.Rec.Intern("rt/link")
	}

	mk := weaklyhard.Constraint{M: 1, K: 5}
	segs := make([]*monitor.LocalSegment, 0, 2)
	results := make([]SegmentResult, 0, 2)
	for _, name := range []string{SegObjects, SegGround} {
		seg := mon.AddSegment(monitor.SegmentConfig{
			Name: name, DMon: cfg.Deadline, DEx: time.Millisecond,
			Period: cfg.Period, Constraint: mk,
		})
		results = append(results, SegmentResult{Name: name})
		idx := len(results) - 1
		var resolved, miss *telemetry.Counter
		var lat *telemetry.Histogram
		if sink != nil && !traced {
			segLabel := telemetry.Label{Name: "segment", Value: name}
			resolved = sink.Reg.Counter("chainmon_segment_resolutions_total",
				"Resolved activations per segment and verdict.", segLabel,
				telemetry.Label{Name: "status", Value: "ok"})
			miss = sink.Reg.Counter("chainmon_segment_resolutions_total",
				"Resolved activations per segment and verdict.", segLabel,
				telemetry.Label{Name: "status", Value: "missed"})
			lat = sink.Reg.Histogram("chainmon_segment_latency_seconds",
				"Segment latency per resolved activation.", nil, segLabel)
		}
		// Runs on the monitor goroutine; counters are lock-free atomics, so
		// a concurrent /metrics scrape is safe mid-run.
		seg.OnResolve(func(r monitor.Resolution) {
			switch r.Status {
			case monitor.StatusOK:
				results[idx].OK++
				if resolved != nil {
					resolved.Inc()
				}
			case monitor.StatusMissed:
				results[idx].Missed++
				if miss != nil {
					miss.Inc()
				}
			case monitor.StatusRecovered:
				results[idx].Recovered++
			}
			if lat != nil && r.Latency > 0 {
				lat.Observe(int64(r.Latency))
			}
			results[idx].Resolutions = append(results[idx].Resolutions, r)
		})
		segs = append(segs, seg)
	}
	objects, ground := segs[0], segs[1]
	if traced {
		mon.AttachWallclockTelemetry(sink, "rt")
	}
	if cfg.Live != nil {
		cfg.Live.SetTimebase("wall")
		mon.AttachLive(cfg.Live)
		// Chain-level (m,k): the two segments share their start event and
		// the ground segment carries the verdict (the objects segment never
		// misses), so the chain window slides on ground resolutions.
		chain := monitor.NewChain("rt", cfg.Deadline+time.Millisecond, cfg.Deadline+time.Millisecond, mk)
		chain.Append(objects).Append(ground).Seal()
		chain.AttachLive(cfg.Live)
	}

	var scanCount atomic.Uint64
	loop := walltime.NewLoop(clock, sem)
	loop.Scan = func() {
		mon.ScanNow()
		scanCount.Add(1)
		if manScans != nil {
			manScans.Inc()
			manDepth.Set(int64(mon.Core().PendingTimeouts()))
		}
	}
	loop.Next = mon.Core().NextDeadline
	start := time.Now()
	loop.Start()

	// The producer: one activation per period; both segments start
	// together, objects always ends after Work, ground is stalled past the
	// deadline on every LateEvery-th frame (posted on the next iteration,
	// one period after its start).
	lateGround := -1
	next := time.Now()
	for act := 0; act < cfg.Frames; act++ {
		time.Sleep(time.Until(next))
		next = next.Add(cfg.Period)

		if lateGround >= 0 {
			// One period has elapsed — the held end event is now late and
			// the ground exception has already fired.
			ground.EndInjected(uint64(lateGround))
			lateGround = -1
		}

		if ups := cfg.swapsFor(act); ups != nil {
			// Staged before this frame's starts are posted: the scan that
			// drains them applies the table first, so this frame onward runs
			// under the new deadlines while in-flight activations keep the
			// deadline they were armed with.
			budget.Stage(ups)
		}

		if traced {
			// Emulated pipeline hops of this frame, all on the producer
			// goroutine (single writer of both tracks): publish, wire,
			// deliver — then the StartInjected posts below continue the flow.
			flow := telemetry.FlowID(scope, uint64(act))
			sent := int64(clock.Now())
			prodTrack.Append(telemetry.Event{
				TS: sent, Act: uint64(act), Flow: flow,
				Kind: telemetry.KindDDSSend, Label: frameLbl,
			})
			netTrack.Append(telemetry.Event{
				TS: sent, Act: uint64(act), Flow: flow,
				Kind: telemetry.KindNetSend, Label: linkLbl,
			})
			recv := int64(clock.Now())
			prodTrack.Append(telemetry.Event{
				TS: recv, Act: uint64(act), Arg: recv - sent, Flow: flow,
				Kind: telemetry.KindDDSRecv, Label: frameLbl,
			})
		}
		objects.StartInjected(uint64(act))
		ground.StartInjected(uint64(act))
		if frames != nil {
			frames.Inc()
		}

		time.Sleep(cfg.Work)
		objects.EndInjected(uint64(act))
		if cfg.LateEvery > 0 && act%cfg.LateEvery == cfg.LateEvery-1 {
			lateGround = act
		} else {
			ground.EndInjected(uint64(act))
		}
	}
	if lateGround >= 0 {
		time.Sleep(cfg.Period)
		ground.EndInjected(uint64(lateGround))
	}
	// Let the last deadlines expire and the final ends drain, then wake the
	// loop once more so the drain happens before Stop.
	time.Sleep(cfg.Deadline + 20*time.Millisecond)
	sem.Wake()
	time.Sleep(10 * time.Millisecond)
	loop.Stop()

	return Result{
		Elapsed:  time.Since(start),
		Frames:   cfg.Frames,
		Scans:    scanCount.Load(),
		Segments: results,
	}, nil
}
