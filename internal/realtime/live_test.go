package realtime

import (
	"math"
	"strings"
	"testing"

	"chainmon/internal/livestats"
	"chainmon/internal/monitor"
	"chainmon/internal/stats"
	"chainmon/internal/telemetry"
	"chainmon/internal/weaklyhard"
)

// TestLiveAgreementWallClock pins the wall-clock side of the agreement
// contract: the live sketch summarizes exactly the verdict stream the run
// resolved (same LatencySample rule as SegmentStats), its quantiles stay
// within the documented rank-error bound of the exact sample, and the
// /health document's (m,k) windows equal a reference weaklyhard.Counter
// replayed over the same resolutions.
func TestLiveAgreementWallClock(t *testing.T) {
	cfg := testConfig()
	set := livestats.NewSet(0)
	cfg.Live = set
	res, err := Run(cfg, telemetry.NewSink(1<<12))
	if err != nil {
		t.Fatal(err)
	}

	h := set.Health()
	if h.Timebase != "wall" {
		t.Errorf("timebase = %q, want wall", h.Timebase)
	}

	mk := weaklyhard.Constraint{M: 1, K: 5}
	for _, segRes := range res.Segments {
		// Rebuild the exact sample and window state from the run's own
		// in-order resolution stream.
		exact := stats.NewSample()
		ref := weaklyhard.NewCounter(mk)
		for _, r := range segRes.Resolutions {
			if lat, ok := r.LatencySample(); ok {
				exact.AddDuration(lat)
			}
			ref.Record(r.Status == monitor.StatusMissed)
		}

		scope := set.Segment(segRes.Name, weaklyhard.Constraint{})
		if got, want := scope.Count(), uint64(exact.Len()); got != want {
			t.Errorf("%s: sketch saw %d latencies, exact stream has %d", segRes.Name, got, want)
			continue
		}
		sorted := exact.Values()
		for _, q := range []float64{0.5, 0.95, 0.99} {
			got := scope.Quantile(q)
			pos := q * float64(len(sorted)-1)
			lo := (1 - set.Alpha()) * sorted[int(math.Floor(pos))]
			hi := (1 + set.Alpha()) * sorted[int(math.Ceil(pos))]
			if got < lo || got > hi {
				t.Errorf("%s: live p%g = %g outside [%g, %g]", segRes.Name, q*100, got, lo, hi)
			}
		}

		sh, ok := h.Segments[segRes.Name]
		if !ok || sh.SLO == nil {
			t.Errorf("%s: no SLO in health document", segRes.Name)
			continue
		}
		if sh.SLO.WindowMisses != ref.Misses() || sh.SLO.Budget != ref.Budget() {
			t.Errorf("%s: health window (%d misses, %d budget) != replayed counter (%d, %d)",
				segRes.Name, sh.SLO.WindowMisses, sh.SLO.Budget, ref.Misses(), ref.Budget())
		}
		exec, misses, viol := ref.Totals()
		if sh.SLO.Executions != exec || sh.SLO.TotalMisses != misses || sh.SLO.Violations != viol {
			t.Errorf("%s: health totals (%d,%d,%d) != replayed totals (%d,%d,%d)",
				segRes.Name, sh.SLO.Executions, sh.SLO.TotalMisses, sh.SLO.Violations, exec, misses, viol)
		}
	}

	// The chain scope slides on the ground segment's verdicts.
	ch, ok := h.Chains["rt"]
	if !ok || ch.SLO == nil {
		t.Fatal("chain rt missing from health document")
	}
	ground := res.Segments[1]
	if got := ch.SLO.Executions; got != uint64(len(ground.Resolutions)) {
		t.Errorf("chain executions = %d, want %d", got, len(ground.Resolutions))
	}
	if got := ch.SLO.TotalMisses; got != uint64(ground.Missed) {
		t.Errorf("chain total misses = %d, want %d", got, ground.Missed)
	}

	// The drain sketch is fed through the runtime SegmentHooks chain: every
	// start event that reached the monitor contributes one drain latency.
	drain := h.Segments[SegObjects].Drain
	if drain == nil || drain.Count == 0 {
		t.Error("no drain latencies flowed through the chained runtime hook")
	}
}

// TestLiveMetricsOnWallClock checks that PublishMetrics exports the live
// gauges from a wall-clock run (the surface the /metrics endpoint and the
// -metrics-out snapshot share).
func TestLiveMetricsOnWallClock(t *testing.T) {
	cfg := testConfig()
	set := livestats.NewSet(0)
	cfg.Live = set
	sink := telemetry.NewSink(1 << 12)
	sink.AddExportHook(func() { set.PublishMetrics(sink.Reg) })
	if _, err := Run(cfg, sink); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := sink.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`chainmon_live_latency_count{kind="segment",scope="rt/ground"} 8`,
		`chainmon_live_latency_count{kind="segment",scope="rt/objects"} 8`,
		`chainmon_live_slo_state{kind="chain",scope="rt"}`,
		`chainmon_live_status`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}

	// Snapshot/live agreement at run end: a last live scrape and the
	// -metrics-out snapshot both go through WriteMetrics with the export
	// hook republishing first, so with the run quiesced they must be
	// byte-identical — including every chainmon_live_* gauge.
	var b2 strings.Builder
	if err := sink.WriteMetrics(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("consecutive exports differ after the run ended; snapshot and live /metrics disagree")
	}
}
