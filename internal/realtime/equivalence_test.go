package realtime

import (
	"fmt"
	"testing"
	"time"

	"chainmon/internal/dds"
	"chainmon/internal/monitor"
	"chainmon/internal/sim"
	"chainmon/internal/vclock"
	"chainmon/internal/weaklyhard"
)

// TestCrossTimebaseEquivalence is the acceptance test of the runtime
// extraction: the exact same frame schedule — started, worked and stalled at
// the same relative instants — must yield the same per-segment verdict
// sequence whether the monitor core runs on virtual time (sim.Kernel) or on
// the wall clock (walltime.Loop). The deadlines are generous enough (20 ms
// against 2 ms of work, late ends a full 10 ms past the deadline) that real
// scheduling jitter cannot flip a verdict, so any divergence is a logic
// difference between the timebases — which the shared Core makes impossible
// by construction.
func TestCrossTimebaseEquivalence(t *testing.T) {
	cfg := testConfig()

	wall, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	compareTimebases(t, wall, simReplica(cfg))
}

// TestCrossTimebaseEquivalenceWithActuations extends the equivalence across
// two mid-run deadline actuations staged through the hot-swappable budget
// table. Frame 3 grows the ground deadline to 26 ms — its stalled end still
// arrives a full period after the start, so the verdict stays missed (the
// grow is one-sidedly robust against jitter). Frame 5 shrinks it to 1 ms,
// below the 2 ms work, so frames 5 and 6 miss and the stalled frame 7
// misses too. The swap barrier keeps every verdict decided by the deadline
// the activation was armed with, on both timebases.
func TestCrossTimebaseEquivalenceWithActuations(t *testing.T) {
	cfg := testConfig()
	cfg.Swaps = []Swap{
		{Frame: 3, Segment: SegGround, DMon: 26 * time.Millisecond},
		{Frame: 5, Segment: SegGround, DMon: time.Millisecond},
	}

	wall, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	virt := simReplica(cfg)
	compareTimebases(t, wall, virt)

	want := "0:ok 1:ok 2:ok 3:missed 4:ok 5:missed 6:missed 7:missed "
	for _, segs := range [][]SegmentResult{wall.Segments, virt} {
		if got := verdictTrace(segs[1].Resolutions); got != want {
			t.Errorf("%s verdicts %q, want %q", segs[1].Name, got, want)
		}
		if got := verdictTrace(segs[0].Resolutions); got != "0:ok 1:ok 2:ok 3:ok 4:ok 5:ok 6:ok 7:ok " {
			t.Errorf("%s verdicts %q, want all ok (actuations target ground only)", segs[0].Name, got)
		}
	}
}

func compareTimebases(t *testing.T, wall Result, virt []SegmentResult) {
	t.Helper()
	if len(wall.Segments) != len(virt) {
		t.Fatalf("segment count: wall %d vs sim %d", len(wall.Segments), len(virt))
	}
	for i := range virt {
		w, v := wall.Segments[i], virt[i]
		if w.Name != v.Name {
			t.Fatalf("segment %d: name %q vs %q", i, w.Name, v.Name)
		}
		if w.OK != v.OK || w.Missed != v.Missed || w.Recovered != v.Recovered {
			t.Errorf("%s: wall ok/missed/recovered = %d/%d/%d, sim = %d/%d/%d",
				w.Name, w.OK, w.Missed, w.Recovered, v.OK, v.Missed, v.Recovered)
		}
		if got, want := verdictTrace(w.Resolutions), verdictTrace(v.Resolutions); got != want {
			t.Errorf("%s verdict sequence diverges:\n  wall: %s\n  sim:  %s", w.Name, got, want)
		}
	}
}

// verdictTrace flattens a resolution list to its timebase-independent part:
// the in-order (activation, status) sequence. Timestamps and latencies are
// clock-specific and excluded on purpose.
func verdictTrace(rs []monitor.Resolution) string {
	s := ""
	for _, r := range rs {
		s += fmt.Sprintf("%d:%v ", r.Activation, r.Status)
	}
	return s
}

// simReplica replays Run's producer schedule on the virtual-time runtime:
// same segment parameters, same start/end/stall instants, injected events
// instead of goroutine sleeps. All modeled costs are zeroed so the event
// times match the wall-clock schedule exactly.
func simReplica(cfg Config) []SegmentResult {
	k := sim.NewKernel()
	d := dds.NewDomain(k, sim.NewRNG(cfg.Seed))
	d.KsoftirqCost = sim.Constant(0)
	d.DeliverCost = sim.Constant(0)
	ecu := d.NewECU("ecu", 2, vclock.Config{})
	ecu.Proc.CtxSwitch = sim.Constant(0)
	ecu.Proc.Wakeup = sim.Constant(0)

	mon := monitor.NewLocalMonitor(ecu)
	mon.PostCost = sim.Constant(0)
	mon.ScanCost = sim.Constant(0)
	var budget *monitor.BudgetTable
	if len(cfg.Swaps) > 0 {
		budget = monitor.NewBudgetTable()
		mon.AttachBudget(budget)
	}

	results := make([]SegmentResult, 0, 2)
	segs := make([]*monitor.LocalSegment, 0, 2)
	for _, name := range []string{SegObjects, SegGround} {
		seg := mon.AddSegment(monitor.SegmentConfig{
			Name: name, DMon: sim.Duration(cfg.Deadline), DEx: sim.Millisecond,
			Period: sim.Duration(cfg.Period), Constraint: weaklyhard.Constraint{M: 1, K: 5},
		})
		results = append(results, SegmentResult{Name: name})
		idx := len(results) - 1
		seg.OnResolve(func(r monitor.Resolution) {
			switch r.Status {
			case monitor.StatusOK:
				results[idx].OK++
			case monitor.StatusMissed:
				results[idx].Missed++
			case monitor.StatusRecovered:
				results[idx].Recovered++
			}
			results[idx].Resolutions = append(results[idx].Resolutions, r)
		})
		segs = append(segs, seg)
	}
	objects, ground := segs[0], segs[1]

	for act := 0; act < cfg.Frames; act++ {
		a := uint64(act)
		at := sim.Time(act) * sim.Time(cfg.Period)
		ups := cfg.swapsFor(act)
		k.At(at, func() {
			if ups != nil {
				// Same ordering contract as Run's producer: staged before
				// this frame's starts are posted.
				budget.Stage(ups)
			}
			objects.StartInjected(a)
			ground.StartInjected(a)
		})
		end := at + sim.Time(cfg.Work)
		k.At(end, func() { objects.EndInjected(a) })
		if cfg.LateEvery > 0 && act%cfg.LateEvery == cfg.LateEvery-1 {
			// Stalled: the end arrives one period after the start, well past
			// the deadline — exactly when Run's producer releases it.
			k.At(at+sim.Time(cfg.Period), func() { ground.EndInjected(a) })
		} else {
			k.At(end, func() { ground.EndInjected(a) })
		}
	}
	k.Run()
	return results
}
