package realtime

import (
	"fmt"
	"testing"

	"chainmon/internal/dds"
	"chainmon/internal/monitor"
	"chainmon/internal/sim"
	"chainmon/internal/vclock"
	"chainmon/internal/weaklyhard"
)

// TestCrossTimebaseEquivalence is the acceptance test of the runtime
// extraction: the exact same frame schedule — started, worked and stalled at
// the same relative instants — must yield the same per-segment verdict
// sequence whether the monitor core runs on virtual time (sim.Kernel) or on
// the wall clock (walltime.Loop). The deadlines are generous enough (20 ms
// against 2 ms of work, late ends a full 10 ms past the deadline) that real
// scheduling jitter cannot flip a verdict, so any divergence is a logic
// difference between the timebases — which the shared Core makes impossible
// by construction.
func TestCrossTimebaseEquivalence(t *testing.T) {
	cfg := testConfig()

	wall, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	virt := simReplica(cfg)

	if len(wall.Segments) != len(virt) {
		t.Fatalf("segment count: wall %d vs sim %d", len(wall.Segments), len(virt))
	}
	for i := range virt {
		w, v := wall.Segments[i], virt[i]
		if w.Name != v.Name {
			t.Fatalf("segment %d: name %q vs %q", i, w.Name, v.Name)
		}
		if w.OK != v.OK || w.Missed != v.Missed || w.Recovered != v.Recovered {
			t.Errorf("%s: wall ok/missed/recovered = %d/%d/%d, sim = %d/%d/%d",
				w.Name, w.OK, w.Missed, w.Recovered, v.OK, v.Missed, v.Recovered)
		}
		if got, want := verdictTrace(w.Resolutions), verdictTrace(v.Resolutions); got != want {
			t.Errorf("%s verdict sequence diverges:\n  wall: %s\n  sim:  %s", w.Name, got, want)
		}
	}
}

// verdictTrace flattens a resolution list to its timebase-independent part:
// the in-order (activation, status) sequence. Timestamps and latencies are
// clock-specific and excluded on purpose.
func verdictTrace(rs []monitor.Resolution) string {
	s := ""
	for _, r := range rs {
		s += fmt.Sprintf("%d:%v ", r.Activation, r.Status)
	}
	return s
}

// simReplica replays Run's producer schedule on the virtual-time runtime:
// same segment parameters, same start/end/stall instants, injected events
// instead of goroutine sleeps. All modeled costs are zeroed so the event
// times match the wall-clock schedule exactly.
func simReplica(cfg Config) []SegmentResult {
	k := sim.NewKernel()
	d := dds.NewDomain(k, sim.NewRNG(cfg.Seed))
	d.KsoftirqCost = sim.Constant(0)
	d.DeliverCost = sim.Constant(0)
	ecu := d.NewECU("ecu", 2, vclock.Config{})
	ecu.Proc.CtxSwitch = sim.Constant(0)
	ecu.Proc.Wakeup = sim.Constant(0)

	mon := monitor.NewLocalMonitor(ecu)
	mon.PostCost = sim.Constant(0)
	mon.ScanCost = sim.Constant(0)

	results := make([]SegmentResult, 0, 2)
	segs := make([]*monitor.LocalSegment, 0, 2)
	for _, name := range []string{SegObjects, SegGround} {
		seg := mon.AddSegment(monitor.SegmentConfig{
			Name: name, DMon: sim.Duration(cfg.Deadline), DEx: sim.Millisecond,
			Period: sim.Duration(cfg.Period), Constraint: weaklyhard.Constraint{M: 1, K: 5},
		})
		results = append(results, SegmentResult{Name: name})
		idx := len(results) - 1
		seg.OnResolve(func(r monitor.Resolution) {
			switch r.Status {
			case monitor.StatusOK:
				results[idx].OK++
			case monitor.StatusMissed:
				results[idx].Missed++
			case monitor.StatusRecovered:
				results[idx].Recovered++
			}
			results[idx].Resolutions = append(results[idx].Resolutions, r)
		})
		segs = append(segs, seg)
	}
	objects, ground := segs[0], segs[1]

	for act := 0; act < cfg.Frames; act++ {
		a := uint64(act)
		at := sim.Time(act) * sim.Time(cfg.Period)
		k.At(at, func() {
			objects.StartInjected(a)
			ground.StartInjected(a)
		})
		end := at + sim.Time(cfg.Work)
		k.At(end, func() { objects.EndInjected(a) })
		if cfg.LateEvery > 0 && act%cfg.LateEvery == cfg.LateEvery-1 {
			// Stalled: the end arrives one period after the start, well past
			// the deadline — exactly when Run's producer releases it.
			k.At(at+sim.Time(cfg.Period), func() { ground.EndInjected(a) })
		} else {
			k.At(end, func() { ground.EndInjected(a) })
		}
	}
	k.Run()
	return results
}
