package realtime

import (
	"bytes"
	"testing"
	"time"

	"chainmon/internal/telemetry"
)

// TestRunStreamedTrace runs the wall-clock demo with the background stream
// writer attached — the -realtime -trace-stream configuration — and checks
// the resulting log: wall timebase, nothing dropped with ample ring room,
// and every verdict flow stitched across at least two tracks. Run under
// -race this pins the producer/monitor/drain-goroutine handoff.
func TestRunStreamedTrace(t *testing.T) {
	var buf bytes.Buffer
	sw, err := telemetry.NewStreamWriter(&buf, "wall", telemetry.StreamOptions{
		Background: true,
		RingCap:    1 << 12,
		FlushEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewSink(1 << 12)
	sink.Rec.SetStream(sw)
	res, err := Run(testConfig(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Segments[0].OK != 8 {
		t.Errorf("objects ok=%d, want 8 (stream attach changed verdicts)", res.Segments[0].OK)
	}
	if sw.Dropped() != 0 {
		t.Errorf("dropped %d events with a %d-slot ring", sw.Dropped(), 1<<12)
	}

	l, err := telemetry.ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if l.Timebase != "wall" {
		t.Errorf("timebase = %q, want wall", l.Timebase)
	}
	if int(sw.EventsWritten()) != l.Events() {
		t.Errorf("writer reports %d events, log has %d", sw.EventsWritten(), l.Events())
	}
	type occ struct {
		track string
		kind  telemetry.Kind
	}
	flows := map[uint32][]occ{}
	for _, tr := range l.Tracks() {
		for _, ev := range tr.Events {
			if ev.Flow != 0 {
				flows[ev.Flow] = append(flows[ev.Flow], occ{tr.Name, ev.Kind})
			}
		}
	}
	verdictFlows := 0
	for flow, occs := range flows {
		tracks := map[string]bool{}
		hasVerdict, hasSend := false, false
		for _, o := range occs {
			tracks[o.track] = true
			hasVerdict = hasVerdict || o.kind == telemetry.KindVerdict
			hasSend = hasSend || o.kind == telemetry.KindDDSSend
		}
		if !hasVerdict {
			continue
		}
		verdictFlows++
		if !hasSend {
			t.Errorf("flow %d resolved without a dds-send hop: %v", flow, occs)
		}
		if len(tracks) < 2 {
			t.Errorf("flow %d resolved on a single track: %v", flow, occs)
		}
	}
	// 8 frames, both segments share the "rt" scope: 8 resolved flows.
	if verdictFlows != 8 {
		t.Errorf("%d verdict-carrying flows, want 8", verdictFlows)
	}
}
