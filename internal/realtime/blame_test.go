package realtime

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
	"time"

	"chainmon/internal/blame"
	"chainmon/internal/dds"
	"chainmon/internal/monitor"
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
	"chainmon/internal/vclock"
	"chainmon/internal/weaklyhard"
)

// TestBlameOnlineOfflineByteIdenticalWall pins the replay contract on the
// wall timebase: the blame engine observing the stream writer during a live
// realtime run and the offline recomputation from the written log marshal to
// identical bytes. The observer sits inside the stream's event writer, so the
// online engine sees exactly the events, in exactly the order, that reach the
// log — byte-identity holds by construction even with the background drain
// goroutine interleaving per-segment rings.
func TestBlameOnlineOfflineByteIdenticalWall(t *testing.T) {
	var buf bytes.Buffer
	sw, err := telemetry.NewStreamWriter(&buf, "wall", telemetry.StreamOptions{
		Background: true, RingCap: 1 << 12, FlushEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := blame.New(blame.Options{})
	eng.SetTimebase("wall")
	sw.SetObserver(eng.Feed)
	sink := telemetry.NewSink(1 << 12)
	sink.Rec.SetStream(sw)

	res, err := Run(testConfig(), sink)
	if err != nil {
		t.Fatal(err)
	}
	// Same finalization order as the chainmon binary's wall path: flush the
	// already-admitted exemplars into the log, close the stream (draining the
	// rings through the observer), then finalize the engine — mirroring the
	// offline replay's feed-everything-then-flush order.
	eng.FlushExemplars(sink.Rec.Track("blame-exemplar"))
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	online := eng.Snapshot(blame.RecorderResolvers(sink.Rec))

	l, err := telemetry.ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	offline := blame.FromLog(l, blame.Options{}).Snapshot(blame.LogResolvers(l))

	got, err := json.MarshalIndent(online, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(offline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("online and offline blame reports diverge\nonline:\n%s\noffline:\n%s", got, want)
	}
	if online.Timebase != "wall" {
		t.Errorf("timebase = %q, want wall", online.Timebase)
	}
	// testConfig stalls every 4th ground frame: activations 3 and 7 miss.
	if _, _, miss := countsOf(res.Segments[1]); miss != 2 {
		t.Fatalf("ground misses = %d, want 2", miss)
	}
	if online.Flows != uint64(testConfig().Frames) || online.Missed != 2 {
		t.Errorf("attributed flows=%d missed=%d, want %d/2", online.Flows, online.Missed, testConfig().Frames)
	}
}

func countsOf(s SegmentResult) (ok, rec, miss int) { return s.OK, s.Recovered, s.Missed }

// segProjection is the timebase-independent part of a segment's slack row:
// verdict tallies, the budget in force at the last arm, and the budget epoch
// it was armed under. Dwell times and overrun magnitudes are clock-specific
// and excluded on purpose.
type segProjection struct {
	name     string
	armed    uint64
	missed   uint64
	budgetNS int64
	epoch    uint64
}

func projectScope(t *testing.T, doc blame.Doc) (segs []segProjection, flows, missed uint64, exemplarActs []uint64, primaries []string) {
	t.Helper()
	if len(doc.Scopes) != 1 || doc.Scopes[0].Scope != "rt" {
		t.Fatalf("scopes = %+v, want exactly scope rt", doc.Scopes)
	}
	sc := doc.Scopes[0]
	for _, sg := range sc.Segments {
		segs = append(segs, segProjection{sg.Name, sg.Armed, sg.Missed, sg.BudgetNS, sg.Epoch})
	}
	for _, x := range sc.Exemplars {
		exemplarActs = append(exemplarActs, x.Act)
		primaries = append(primaries, x.Primary)
	}
	sort.Slice(exemplarActs, func(i, j int) bool { return exemplarActs[i] < exemplarActs[j] })
	sort.Strings(primaries)
	return segs, sc.Flows, sc.Missed, exemplarActs, primaries
}

// TestBlameCrossTimebaseEquivalenceWithActuations extends the blame engine's
// equivalence across the two mid-run deadline actuations of the runtime
// acceptance test: a wall-clock run and its virtual-time replica must agree
// on every timebase-independent projection of the attribution — per-segment
// armed/missed tallies, the budget each segment was last armed with, the
// budget epoch in force at that arm, scope flow counts, and the exemplar
// set. (The wall producer additionally traces dds-send/net hops the replica
// does not model, so hop-level magnitudes are clock-specific and excluded.)
func TestBlameCrossTimebaseEquivalenceWithActuations(t *testing.T) {
	cfg := testConfig()
	cfg.Swaps = []Swap{
		{Frame: 3, Segment: SegGround, DMon: 26 * time.Millisecond},
		{Frame: 5, Segment: SegGround, DMon: time.Millisecond},
	}

	wallSink := telemetry.NewSink(1 << 12)
	wallEng := blame.New(blame.Options{})
	wallEng.SetTimebase("wall")
	wallSink.Rec.SetObserver(wallEng.Feed)
	if _, err := Run(cfg, wallSink); err != nil {
		t.Fatal(err)
	}
	wallEng.Flush()
	wallDoc := wallEng.Snapshot(blame.RecorderResolvers(wallSink.Rec))

	simSink := telemetry.NewSink(1 << 12)
	simEng := blame.New(blame.Options{})
	simEng.SetTimebase("sim")
	simSink.Rec.SetObserver(simEng.Feed)
	tracedSimReplica(cfg, simSink)
	simEng.Flush()
	simDoc := simEng.Snapshot(blame.RecorderResolvers(simSink.Rec))

	wallSegs, wallFlows, wallMissed, wallActs, wallPrim := projectScope(t, wallDoc)
	simSegs, simFlows, simMissed, simActs, simPrim := projectScope(t, simDoc)

	if wallFlows != simFlows || wallMissed != simMissed {
		t.Errorf("scope tallies: wall flows/missed = %d/%d, sim = %d/%d",
			wallFlows, wallMissed, simFlows, simMissed)
	}
	if len(wallSegs) != len(simSegs) {
		t.Fatalf("segment rows: wall %d vs sim %d", len(wallSegs), len(simSegs))
	}
	for i := range wallSegs {
		if wallSegs[i] != simSegs[i] {
			t.Errorf("segment projection diverges:\n  wall: %+v\n  sim:  %+v", wallSegs[i], simSegs[i])
		}
	}
	if wallDoc.Epoch != simDoc.Epoch || wallDoc.Epoch == 0 {
		t.Errorf("budget epochs: wall %d vs sim %d, want equal and > 0", wallDoc.Epoch, simDoc.Epoch)
	}
	// Ground's verdicts under the actuations are 3,5,6,7 missed; the default
	// top-K retains all four, so the exemplar sets must agree exactly.
	wantActs := []uint64{3, 5, 6, 7}
	for _, acts := range [][]uint64{wallActs, simActs} {
		if len(acts) != len(wantActs) {
			t.Fatalf("exemplar acts = %v, want %v", acts, wantActs)
		}
		for i := range wantActs {
			if acts[i] != wantActs[i] {
				t.Fatalf("exemplar acts = %v, want %v", acts, wantActs)
			}
		}
	}
	for i := range wallPrim {
		if wallPrim[i] != simPrim[i] {
			t.Errorf("exemplar primaries: wall %v vs sim %v", wallPrim, simPrim)
		}
		if wallPrim[i] != SegGround {
			t.Errorf("exemplar primary = %q, want %q (only ground overruns)", wallPrim[i], SegGround)
		}
	}
	// The last ground arm (frame 7) runs under the shrunk 1 ms budget; the
	// budget read from the events is deadline − post-start = DMon exactly,
	// independent of the clock.
	for _, sg := range wallSegs {
		if sg.name == SegGround && sg.budgetNS != int64(time.Millisecond) {
			t.Errorf("ground budget at last arm = %d ns, want %d", sg.budgetNS, int64(time.Millisecond))
		}
	}
}

// tracedSimReplica is equivalence_test's simReplica with telemetry attached:
// same zeroed costs, same injected schedule, plus the flow bindings and
// monitor probe the wall-clock run uses, so the blame engine sees the same
// arm/post/verdict/budget-swap event structure on virtual time.
func tracedSimReplica(cfg Config, sink *telemetry.Sink) []SegmentResult {
	k := sim.NewKernel()
	d := dds.NewDomain(k, sim.NewRNG(cfg.Seed))
	d.KsoftirqCost = sim.Constant(0)
	d.DeliverCost = sim.Constant(0)
	ecu := d.NewECU("ecu", 2, vclock.Config{})
	ecu.Proc.CtxSwitch = sim.Constant(0)
	ecu.Proc.Wakeup = sim.Constant(0)

	mon := monitor.NewLocalMonitor(ecu)
	mon.PostCost = sim.Constant(0)
	mon.ScanCost = sim.Constant(0)
	var budget *monitor.BudgetTable
	if len(cfg.Swaps) > 0 {
		budget = monitor.NewBudgetTable()
		mon.AttachBudget(budget)
	}

	// Same flow-scope contract as Run: both segments share scope "rt", bound
	// before the monitor probe interns the segment names.
	sink.Rec.BindFlow(SegObjects, "rt")
	sink.Rec.BindFlow(SegGround, "rt")

	results := make([]SegmentResult, 0, 2)
	segs := make([]*monitor.LocalSegment, 0, 2)
	for _, name := range []string{SegObjects, SegGround} {
		seg := mon.AddSegment(monitor.SegmentConfig{
			Name: name, DMon: sim.Duration(cfg.Deadline), DEx: sim.Millisecond,
			Period: sim.Duration(cfg.Period), Constraint: weaklyhard.Constraint{M: 1, K: 5},
		})
		results = append(results, SegmentResult{Name: name})
		idx := len(results) - 1
		seg.OnResolve(func(r monitor.Resolution) {
			switch r.Status {
			case monitor.StatusOK:
				results[idx].OK++
			case monitor.StatusMissed:
				results[idx].Missed++
			case monitor.StatusRecovered:
				results[idx].Recovered++
			}
			results[idx].Resolutions = append(results[idx].Resolutions, r)
		})
		segs = append(segs, seg)
	}
	mon.AttachTelemetry(sink)
	objects, ground := segs[0], segs[1]

	for act := 0; act < cfg.Frames; act++ {
		a := uint64(act)
		at := sim.Time(act) * sim.Time(cfg.Period)
		ups := cfg.swapsFor(act)
		k.At(at, func() {
			if ups != nil {
				budget.Stage(ups)
			}
			objects.StartInjected(a)
			ground.StartInjected(a)
		})
		end := at + sim.Time(cfg.Work)
		k.At(end, func() { objects.EndInjected(a) })
		if cfg.LateEvery > 0 && act%cfg.LateEvery == cfg.LateEvery-1 {
			k.At(at+sim.Time(cfg.Period), func() { ground.EndInjected(a) })
		} else {
			k.At(end, func() { ground.EndInjected(a) })
		}
	}
	k.Run()
	return results
}
