package realtime

import (
	"strings"
	"testing"
	"time"

	"chainmon/internal/monitor"
	"chainmon/internal/telemetry"
)

// testConfig keeps the wall-clock run short but with generous margins, so
// scheduling jitter on a loaded CI machine (and under -race) cannot flip a
// verdict: nominal work is 2 ms against a 20 ms deadline, and the stalled
// end arrives a full 10 ms after the deadline.
func testConfig() Config {
	return Config{
		Frames:    8,
		Period:    30 * time.Millisecond,
		Deadline:  20 * time.Millisecond,
		Work:      2 * time.Millisecond,
		LateEvery: 4,
		RingCap:   256,
		Seed:      1,
	}
}

func TestRunVerdicts(t *testing.T) {
	sink := telemetry.NewSink(1 << 12)
	res, err := Run(testConfig(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 2 {
		t.Fatalf("got %d segments, want 2", len(res.Segments))
	}
	objects, ground := res.Segments[0], res.Segments[1]
	if objects.OK != 8 || objects.Missed != 0 {
		t.Errorf("objects: ok=%d missed=%d, want 8/0", objects.OK, objects.Missed)
	}
	// Frames 3 and 7 stall past the deadline.
	if ground.OK != 6 || ground.Missed != 2 {
		t.Errorf("ground: ok=%d missed=%d, want 6/2", ground.OK, ground.Missed)
	}
	// Resolutions arrive in activation order (the reorder buffer's
	// guarantee holds on the wall clock too).
	for i, r := range ground.Resolutions {
		if r.Activation != uint64(i) {
			t.Fatalf("ground resolution %d is activation %d; want in-order delivery", i, r.Activation)
		}
	}
	for _, r := range ground.Resolutions {
		late := r.Activation%4 == 3
		if late && r.Status != monitor.StatusMissed {
			t.Errorf("activation %d: status %v, want missed", r.Activation, r.Status)
		}
		if !late && r.Status != monitor.StatusOK {
			t.Errorf("activation %d: status %v, want ok", r.Activation, r.Status)
		}
	}
	if res.Scans == 0 {
		t.Error("no monitor passes recorded")
	}

	// The live registry must reflect the run in Prometheus text form. With a
	// full sink the per-segment counters come from the monitor's telemetry
	// attach, not from Run itself — the values must still match the verdicts.
	var b strings.Builder
	if err := sink.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`chainmon_realtime_frames_total 8`,
		`chainmon_segment_resolutions_total{segment="rt/objects",status="ok"} 8`,
		`chainmon_segment_resolutions_total{segment="rt/ground",status="missed"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestRunNilSink proves the run works dark (no instrumentation).
func TestRunNilSink(t *testing.T) {
	cfg := testConfig()
	cfg.Frames = 3
	cfg.LateEvery = 0
	res, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Segments[1].OK; got != 3 {
		t.Errorf("ground ok=%d, want 3", got)
	}
}

func TestConfigValidate(t *testing.T) {
	for name, mut := range map[string]func(*Config){
		"zero frames":        func(c *Config) { c.Frames = 0 },
		"deadline >= period": func(c *Config) { c.Deadline = c.Period },
		"work >= deadline":   func(c *Config) { c.Work = c.Deadline },
		"ring not power2":    func(c *Config) { c.RingCap = 300 },
	} {
		cfg := testConfig()
		mut(&cfg)
		if _, err := Run(cfg, nil); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}
