package vclock

import (
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
)

// clockTel records the clock's PTP random-walk steps: one KindClockSync
// event per correction interval (100 ms default — far below the event-ring
// capacity) plus offset gauges.
type clockTel struct {
	track  *telemetry.Track
	label  uint16
	offset *telemetry.Gauge
	absMax *telemetry.Gauge
}

// AttachTelemetry wires the clock to the sink. A nil sink leaves it dark.
func (c *Clock) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	clock := telemetry.Label{Name: "clock", Value: c.name}
	c.tel = &clockTel{
		track: sink.Rec.Track("clock/" + c.name),
		label: sink.Rec.Intern(c.name),
		offset: sink.Reg.Gauge("chainmon_clock_offset_ns",
			"Local-minus-global clock offset after the last sync step.", clock),
		absMax: sink.Reg.Gauge("chainmon_clock_offset_abs_max_ns",
			"Largest absolute clock offset observed.", clock),
	}
}

func (t *clockTel) step(at sim.Time, offset sim.Duration) {
	t.offset.Set(int64(offset))
	abs := int64(offset)
	if abs < 0 {
		abs = -abs
	}
	// Single-writer (the sim goroutine), so a conditional Set keeps the
	// exported value itself monotone — SetMax would only feed Max().
	if abs > t.absMax.Value() {
		t.absMax.Set(abs)
	}
	t.track.Append(telemetry.Event{
		TS: int64(at), Arg: int64(offset),
		Kind: telemetry.KindClockSync, Label: t.label,
	})
}
