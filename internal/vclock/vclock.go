// Package vclock models per-ECU local clocks synchronized by a PTP-like
// protocol (IEEE 1588). Each clock reads global simulation time plus a
// slowly drifting offset bounded by the synchronization error ε — the
// quantity the paper's synchronization-based remote monitoring depends on.
package vclock

import (
	"fmt"

	"chainmon/internal/sim"
)

// Clock is a local clock of one processing resource. Reads return
// global time plus a bounded offset that drifts between PTP corrections.
type Clock struct {
	name string
	k    *sim.Kernel
	rng  *sim.RNG

	epsilon  sim.Duration // bound on |offset|
	interval sim.Duration // correction interval (how often the offset drifts)
	walk     sim.BoundedWalk
	lastStep sim.Time
}

// Config parameterizes a clock.
type Config struct {
	// Epsilon is the synchronization error bound ε: |local - global| ≤ ε.
	Epsilon sim.Duration
	// DriftStep is the maximum offset change per correction interval.
	DriftStep sim.Duration
	// Interval is the PTP correction interval; the offset performs one
	// bounded random-walk step per elapsed interval. Defaults to 100 ms.
	Interval sim.Duration
}

// New creates a clock attached to the kernel. A zero Epsilon yields a
// perfect clock.
func New(k *sim.Kernel, rng *sim.RNG, name string, cfg Config) *Clock {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * sim.Millisecond
	}
	if cfg.DriftStep <= 0 {
		cfg.DriftStep = cfg.Epsilon / 4
	}
	return &Clock{
		name:     name,
		k:        k,
		rng:      rng.Derive("clock/" + name),
		epsilon:  cfg.Epsilon,
		interval: cfg.Interval,
		walk:     sim.BoundedWalk{Bound: cfg.Epsilon, Step: cfg.DriftStep},
	}
}

// Epsilon returns the synchronization error bound.
func (c *Clock) Epsilon() sim.Duration { return c.epsilon }

// Now returns the local clock reading at the current global time.
func (c *Clock) Now() sim.Time {
	return c.At(c.k.Now())
}

// At returns the local clock reading for the given global time. The offset
// is advanced lazily, one random-walk step per elapsed correction interval,
// so clock reads stay cheap and deterministic.
func (c *Clock) At(global sim.Time) sim.Time {
	if c.epsilon == 0 {
		return global
	}
	for c.lastStep.Add(c.interval) <= global {
		c.lastStep = c.lastStep.Add(c.interval)
		c.walk.Next(c.rng)
	}
	return global.Add(c.walk.Value())
}

// Offset returns the current local-minus-global offset.
func (c *Clock) Offset() sim.Duration {
	c.At(c.k.Now()) // advance the walk
	return c.walk.Value()
}

// GlobalAfter converts a local-clock deadline into a global-time delay from
// now: it returns how much global time remains until the local clock reads
// deadline. A receiver uses this to program a timer for a deadline that was
// computed from a sender timestamp. Negative results mean the deadline
// already passed on the local clock.
func (c *Clock) GlobalAfter(localDeadline sim.Time) sim.Duration {
	return localDeadline.Sub(c.Now())
}

func (c *Clock) String() string {
	return fmt.Sprintf("clock(%s, ε=%v)", c.name, c.epsilon)
}
