// Package vclock models per-ECU local clocks synchronized by a PTP-like
// protocol (IEEE 1588). Each clock reads global simulation time plus a
// slowly drifting offset bounded by the synchronization error ε — the
// quantity the paper's synchronization-based remote monitoring depends on.
package vclock

import (
	"fmt"

	"chainmon/internal/sim"
)

// Clock is a local clock of one processing resource. Reads return
// global time plus a bounded offset that drifts between PTP corrections.
type Clock struct {
	name string
	k    *sim.Kernel
	rng  *sim.RNG

	epsilon  sim.Duration // bound on |offset|
	interval sim.Duration // correction interval (how often the offset drifts)
	walk     sim.BoundedWalk
	lastStep sim.Time

	// Fault-injection state (internal/faultinject): an additional offset on
	// top of the bounded PTP walk, so that the |local-global| ≤ ε contract
	// can be violated deliberately. faultStep is an injected step error;
	// driftRate accumulates linearly from driftSince.
	faultStep  sim.Duration
	driftRate  float64 // injected drift, seconds per second
	driftSince sim.Time

	tel *clockTel // nil when uninstrumented
}

// Config parameterizes a clock.
type Config struct {
	// Epsilon is the synchronization error bound ε: |local - global| ≤ ε.
	Epsilon sim.Duration
	// DriftStep is the maximum offset change per correction interval.
	DriftStep sim.Duration
	// Interval is the PTP correction interval; the offset performs one
	// bounded random-walk step per elapsed interval. Defaults to 100 ms.
	Interval sim.Duration
}

// New creates a clock attached to the kernel. A zero Epsilon yields a
// perfect clock.
func New(k *sim.Kernel, rng *sim.RNG, name string, cfg Config) *Clock {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * sim.Millisecond
	}
	if cfg.DriftStep <= 0 {
		cfg.DriftStep = cfg.Epsilon / 4
	}
	return &Clock{
		name:     name,
		k:        k,
		rng:      rng.Derive("clock/" + name),
		epsilon:  cfg.Epsilon,
		interval: cfg.Interval,
		walk:     sim.BoundedWalk{Bound: cfg.Epsilon, Step: cfg.DriftStep},
	}
}

// Epsilon returns the synchronization error bound.
func (c *Clock) Epsilon() sim.Duration { return c.epsilon }

// Now returns the local clock reading at the current global time.
func (c *Clock) Now() sim.Time {
	return c.At(c.k.Now())
}

// At returns the local clock reading for the given global time. The offset
// is advanced lazily, one random-walk step per elapsed correction interval,
// so clock reads stay cheap and deterministic.
func (c *Clock) At(global sim.Time) sim.Time {
	fault := c.faultAt(global)
	if c.epsilon == 0 {
		return global.Add(fault)
	}
	for c.lastStep.Add(c.interval) <= global {
		c.lastStep = c.lastStep.Add(c.interval)
		c.walk.Next(c.rng)
		if c.tel != nil {
			c.tel.step(c.lastStep, c.walk.Value()+fault)
		}
	}
	return global.Add(c.walk.Value() + fault)
}

// faultAt returns the injected synchronization error at the given global
// time: the step error plus the drift accumulated since it was set.
func (c *Clock) faultAt(global sim.Time) sim.Duration {
	f := c.faultStep
	if c.driftRate != 0 && global > c.driftSince {
		f += sim.Duration(c.driftRate * float64(global.Sub(c.driftSince)))
	}
	return f
}

// InjectStep adds d to the clock's offset from now on, modelling a faulty
// PTP step correction (e.g. a mis-ranked grandmaster). The injected error
// comes on top of the bounded walk, so it can push the clock beyond ε.
func (c *Clock) InjectStep(d sim.Duration) {
	c.faultStep += d
}

// SetDrift sets an injected frequency error in parts per million; the
// offset error grows linearly from now at that rate (on top of the bounded
// walk) until the rate is changed. Accumulated drift is folded into the
// step error, so successive calls compose.
func (c *Clock) SetDrift(ppm float64) {
	now := c.k.Now()
	c.faultStep = c.faultAt(now)
	c.driftSince = now
	c.driftRate = ppm * 1e-6
}

// ClearFault removes all injected clock error, modelling the PTP servo
// re-converging after the fault disappears.
func (c *Clock) ClearFault() {
	c.faultStep = 0
	c.driftRate = 0
}

// FaultOffset returns the injected synchronization error at the current
// global time (zero when no fault is active).
func (c *Clock) FaultOffset() sim.Duration {
	return c.faultAt(c.k.Now())
}

// Offset returns the current local-minus-global offset.
func (c *Clock) Offset() sim.Duration {
	c.At(c.k.Now()) // advance the walk
	return c.walk.Value() + c.faultAt(c.k.Now())
}

// GlobalAfter converts a local-clock deadline into a global-time delay from
// now: it returns how much global time remains until the local clock reads
// deadline. A receiver uses this to program a timer for a deadline that was
// computed from a sender timestamp. Negative results mean the deadline
// already passed on the local clock.
func (c *Clock) GlobalAfter(localDeadline sim.Time) sim.Duration {
	return localDeadline.Sub(c.Now())
}

func (c *Clock) String() string {
	return fmt.Sprintf("clock(%s, ε=%v)", c.name, c.epsilon)
}
