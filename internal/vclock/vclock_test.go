package vclock

import (
	"testing"
	"testing/quick"

	"chainmon/internal/sim"
)

func TestPerfectClockTracksGlobal(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, sim.NewRNG(1), "ecu0", Config{Epsilon: 0})
	k.At(12345, func() {
		if c.Now() != 12345 {
			t.Errorf("Now() = %v, want 12345", c.Now())
		}
	})
	k.Run()
}

func TestOffsetBoundedByEpsilon(t *testing.T) {
	f := func(seed int64) bool {
		k := sim.NewKernel()
		eps := 50 * sim.Microsecond
		c := New(k, sim.NewRNG(seed), "e", Config{Epsilon: eps, DriftStep: 20 * sim.Microsecond})
		ok := true
		for i := 1; i <= 100; i++ {
			tm := sim.Time(i) * sim.Time(73*sim.Millisecond)
			local := c.At(tm)
			diff := local.Sub(tm)
			if diff > eps || diff < -eps {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockMonotonicForMonotonicReads(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, sim.NewRNG(3), "e", Config{
		Epsilon:   50 * sim.Microsecond,
		DriftStep: 10 * sim.Microsecond,
		Interval:  100 * sim.Millisecond,
	})
	prev := c.At(0)
	for i := 1; i <= 1000; i++ {
		// Reads every 1 ms; drift step (10 µs per 100 ms) cannot exceed
		// elapsed time, so local time must not go backwards.
		now := c.At(sim.Time(i) * sim.Time(sim.Millisecond))
		if now < prev {
			t.Fatalf("clock went backwards: %v after %v", now, prev)
		}
		prev = now
	}
}

func TestTwoClocksDisagreeWithinTwoEpsilon(t *testing.T) {
	k := sim.NewKernel()
	rng := sim.NewRNG(4)
	eps := 50 * sim.Microsecond
	a := New(k, rng, "a", Config{Epsilon: eps})
	b := New(k, rng, "b", Config{Epsilon: eps})
	for i := 0; i < 200; i++ {
		tm := sim.Time(i) * sim.Time(57*sim.Millisecond)
		d := a.At(tm).Sub(b.At(tm))
		if d > 2*eps || d < -2*eps {
			t.Fatalf("clock disagreement %v exceeds 2ε", d)
		}
	}
}

func TestGlobalAfter(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, sim.NewRNG(5), "e", Config{Epsilon: 0})
	k.At(1000, func() {
		if d := c.GlobalAfter(sim.Time(1500)); d != 500 {
			t.Errorf("GlobalAfter = %v, want 500", d)
		}
		if d := c.GlobalAfter(sim.Time(900)); d != -100 {
			t.Errorf("GlobalAfter past deadline = %v, want -100", d)
		}
	})
	k.Run()
}

func TestOffsetAccessor(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, sim.NewRNG(6), "e", Config{Epsilon: 30 * sim.Microsecond})
	k.At(sim.Time(5*sim.Second), func() {
		off := c.Offset()
		if off > 30*sim.Microsecond || off < -30*sim.Microsecond {
			t.Errorf("offset %v out of bounds", off)
		}
	})
	k.Run()
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestDefaultIntervalAndStep(t *testing.T) {
	k := sim.NewKernel()
	c := New(k, sim.NewRNG(7), "e", Config{Epsilon: 40 * sim.Microsecond})
	if c.interval != 100*sim.Millisecond {
		t.Errorf("default interval = %v", c.interval)
	}
	if c.walk.Step != 10*sim.Microsecond {
		t.Errorf("default step = %v", c.walk.Step)
	}
	if c.Epsilon() != 40*sim.Microsecond {
		t.Errorf("Epsilon() = %v", c.Epsilon())
	}
}
