package stats

import (
	"strings"
	"testing"
	"time"
)

func TestRenderBoxplotsBasic(t *testing.T) {
	a := FromDurations([]time.Duration{10, 20, 30, 40, 50}).Tukey()
	b := FromDurations([]time.Duration{60, 70, 80, 90, 100}).Tukey()
	out := RenderBoxplots([]string{"first", "second"}, []Boxplot{a, b}, 40)
	if out == "" {
		t.Fatal("empty render")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two rows + axis
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "first") || !strings.Contains(lines[0], "╫") {
		t.Errorf("row missing label or median: %q", lines[0])
	}
	// The first box spans lower values: its median bar must be left of the
	// second's.
	if strings.IndexRune(lines[0], '╫') >= strings.IndexRune(lines[1], '╫') {
		t.Error("boxes not on a common scale")
	}
}

func TestRenderBoxplotsOutliers(t *testing.T) {
	s := FromDurations([]time.Duration{10, 11, 12, 13, 14, 15, 16, 17, 18, 200})
	out := RenderBoxplots([]string{"x"}, []Boxplot{s.Tukey()}, 60)
	if !strings.Contains(out, "·") {
		t.Errorf("outlier marker missing: %q", out)
	}
}

func TestRenderBoxplotsDegenerate(t *testing.T) {
	if RenderBoxplots(nil, nil, 40) != "" {
		t.Error("empty input should render nothing")
	}
	if RenderBoxplots([]string{"a"}, []Boxplot{{}}, 40) != "" {
		t.Error("all-empty boxes should render nothing")
	}
	same := FromDurations([]time.Duration{5, 5, 5}).Tukey()
	if RenderBoxplots([]string{"a"}, []Boxplot{same}, 40) != "" {
		t.Error("zero-range scale should render nothing rather than divide by zero")
	}
}

func TestRenderBoxplotsMinimumWidth(t *testing.T) {
	a := FromDurations([]time.Duration{1, 2, 3}).Tukey()
	out := RenderBoxplots([]string{"a"}, []Boxplot{a}, 1)
	if out == "" {
		t.Error("small width should be clamped, not fail")
	}
}
