package stats

import (
	"fmt"
	"math"
	"strings"
)

// RenderBoxplots draws a set of Tukey boxplots as ASCII art on a common
// scale, the textual analogue of the paper's figures:
//
//	label   |----[==|==]-------·   ·|
//
// with `----` the whisker span, `[==|==]` the interquartile box with the
// median bar, and `·` outliers (clipped to the extremes). The scale line
// shows the common axis in duration units.
func RenderBoxplots(labels []string, boxes []Boxplot, width int) string {
	if len(labels) != len(boxes) || len(boxes) == 0 {
		return ""
	}
	if width < 20 {
		width = 20
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range boxes {
		if b.N == 0 {
			continue
		}
		lo = math.Min(lo, b.Min)
		hi = math.Max(hi, b.Max)
	}
	if math.IsInf(lo, 1) || hi <= lo {
		return ""
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	pos := func(v float64) int {
		p := int(math.Round((v - lo) / (hi - lo) * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}

	var sb strings.Builder
	for i, b := range boxes {
		row := make([]rune, width)
		for j := range row {
			row[j] = ' '
		}
		if b.N > 0 {
			set := func(at int, r rune) { row[at] = r }
			for j := pos(b.LoWhisker); j <= pos(b.HiWhisker); j++ {
				row[j] = '-'
			}
			for j := pos(b.Q1); j <= pos(b.Q3); j++ {
				row[j] = '='
			}
			set(pos(b.LoWhisker), '|')
			set(pos(b.HiWhisker), '|')
			set(pos(b.Q1), '[')
			set(pos(b.Q3), ']')
			set(pos(b.Median), '╫')
			if b.Outliers > 0 {
				if b.Max > b.HiWhisker {
					set(pos(b.Max), '·')
				}
				if b.Min < b.LoWhisker {
					set(pos(b.Min), '·')
				}
			}
		}
		fmt.Fprintf(&sb, "%-*s %s\n", labelWidth, labels[i], string(row))
	}
	// Axis line with three tick labels.
	mid := lo + (hi-lo)/2
	axis := fmt.Sprintf("%s … %s … %s", FormatDuration(lo), FormatDuration(mid), FormatDuration(hi))
	fmt.Fprintf(&sb, "%-*s %s\n", labelWidth, "", axis)
	return sb.String()
}
