// Package stats provides the descriptive statistics used throughout the
// evaluation: quantiles, Tukey boxplot five-number summaries (the paper
// reports all latency results as Tukey boxplots), histograms and text
// rendering of both.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample is a collection of measurements (durations as float64 nanoseconds
// internally, so arbitrary metrics can be summarized too).
type Sample struct {
	values []float64
	sorted bool
}

// NewSample returns an empty sample.
func NewSample() *Sample { return &Sample{} }

// NewSampleCap returns an empty sample with capacity for n measurements, so
// hot loops of known size fill it without growth reallocations.
func NewSampleCap(n int) *Sample { return &Sample{values: make([]float64, 0, n)} }

// Reset empties the sample but keeps the underlying buffer, so a sample can
// be reused across runs without reallocating.
func (s *Sample) Reset() {
	s.values = s.values[:0]
	s.sorted = false
}

// FromDurations builds a sample from durations.
func FromDurations(ds []time.Duration) *Sample {
	s := NewSampleCap(len(ds))
	for _, d := range ds {
		s.AddDuration(d)
	}
	return s
}

// FromFloats builds a sample from raw values.
func FromFloats(vs []float64) *Sample {
	s := NewSampleCap(len(vs))
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

// Add appends a raw value.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddDuration appends a duration measurement.
func (s *Sample) AddDuration(d time.Duration) { s.Add(float64(d)) }

// Len returns the number of measurements.
func (s *Sample) Len() int { return len(s.values) }

// Values returns the measurements in sorted order. The returned slice is
// owned by the sample and must not be modified.
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	return s.values
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics (type-7 estimator, the default of R and NumPy).
func (s *Sample) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	if q <= 0 {
		return s.values[0]
	}
	if q >= 1 {
		return s.values[len(s.values)-1]
	}
	pos := q * float64(len(s.values)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.values[lo]
	}
	frac := pos - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Min returns the smallest measurement.
func (s *Sample) Min() float64 { return s.Quantile(0) }

// Max returns the largest measurement.
func (s *Sample) Max() float64 { return s.Quantile(1) }

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CountAbove returns how many measurements exceed the threshold.
func (s *Sample) CountAbove(threshold float64) int {
	s.ensureSorted()
	// First index with value > threshold.
	i := sort.SearchFloat64s(s.values, math.Nextafter(threshold, math.Inf(1)))
	return len(s.values) - i
}

// Boxplot is a Tukey five-number summary: quartiles, whiskers at the last
// data point within 1.5·IQR of the box, and the outliers beyond them.
type Boxplot struct {
	N            int
	Min, Max     float64
	Q1, Median   float64
	Q3           float64
	Mean         float64
	LoWhisker    float64
	HiWhisker    float64
	Outliers     int // count of points outside the whiskers
	OutlierFrac  float64
	WhiskerWidth float64 // 1.5·IQR, kept for reporting
}

// Tukey computes the Tukey boxplot summary of the sample.
func (s *Sample) Tukey() Boxplot {
	b := Boxplot{N: s.Len()}
	if b.N == 0 {
		b.Min, b.Max, b.Q1, b.Median, b.Q3 = math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return b
	}
	s.ensureSorted()
	b.Min, b.Max = s.Min(), s.Max()
	b.Q1, b.Median, b.Q3 = s.Quantile(0.25), s.Median(), s.Quantile(0.75)
	b.Mean = s.Mean()
	iqr := b.Q3 - b.Q1
	b.WhiskerWidth = 1.5 * iqr
	loFence := b.Q1 - b.WhiskerWidth
	hiFence := b.Q3 + b.WhiskerWidth
	b.LoWhisker, b.HiWhisker = b.Min, b.Max
	out := 0
	for _, v := range s.values {
		if v < loFence || v > hiFence {
			out++
		}
	}
	// Whiskers: extreme data points within the fences.
	for _, v := range s.values {
		if v >= loFence {
			b.LoWhisker = v
			break
		}
	}
	for i := len(s.values) - 1; i >= 0; i-- {
		if s.values[i] <= hiFence {
			b.HiWhisker = s.values[i]
			break
		}
	}
	b.Outliers = out
	b.OutlierFrac = float64(out) / float64(b.N)
	return b
}

// FormatDuration renders a float64-nanoseconds value as a duration string.
func FormatDuration(ns float64) string {
	if math.IsNaN(ns) {
		return "n/a"
	}
	return time.Duration(ns).Round(100 * time.Nanosecond).String()
}

// DurationRow renders the boxplot as a one-line table row with duration
// units, in the order the paper's figures report: min / Q1 / median / Q3 /
// whisker / max, plus sample size and outlier count.
func (b Boxplot) DurationRow(label string) string {
	return fmt.Sprintf("%-28s n=%-6d min=%-10s q1=%-10s med=%-10s q3=%-10s whisk=%-10s max=%-10s outliers=%d (%.1f%%)",
		label, b.N,
		FormatDuration(b.Min), FormatDuration(b.Q1), FormatDuration(b.Median),
		FormatDuration(b.Q3), FormatDuration(b.HiWhisker), FormatDuration(b.Max),
		b.Outliers, 100*b.OutlierFrac)
}

// Histogram divides [min,max] into the given number of equal-width bins and
// counts measurements per bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// Histogram computes an equal-width histogram over the sample range.
func (s *Sample) Histogram(bins int) Histogram {
	h := Histogram{Counts: make([]int, bins)}
	if s.Len() == 0 || bins == 0 {
		return h
	}
	h.Lo, h.Hi = s.Min(), s.Max()
	width := (h.Hi - h.Lo) / float64(bins)
	if width == 0 {
		h.Counts[0] = s.Len()
		return h
	}
	for _, v := range s.values {
		i := int((v - h.Lo) / width)
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h
}

// Render draws the histogram as ASCII bars, one line per bin.
func (h Histogram) Render(width int) string {
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return "(empty)\n"
	}
	var sb strings.Builder
	binWidth := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		lo := h.Lo + float64(i)*binWidth
		bar := strings.Repeat("█", c*width/maxCount)
		fmt.Fprintf(&sb, "%12s | %-*s %d\n", FormatDuration(lo), width, bar, c)
	}
	return sb.String()
}
