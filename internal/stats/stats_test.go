package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestQuantileSimple(t *testing.T) {
	s := FromFloats([]float64{1, 2, 3, 4, 5})
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	s := FromFloats([]float64{0, 10})
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %v, want 5", got)
	}
	if got := s.Quantile(0.75); got != 7.5 {
		t.Errorf("Quantile(0.75) = %v, want 7.5", got)
	}
}

func TestEmptySample(t *testing.T) {
	s := NewSample()
	if !math.IsNaN(s.Median()) || !math.IsNaN(s.Mean()) {
		t.Error("empty sample should return NaN")
	}
	b := s.Tukey()
	if b.N != 0 || !math.IsNaN(b.Median) {
		t.Error("empty boxplot wrong")
	}
	if FormatDuration(math.NaN()) != "n/a" {
		t.Error("NaN formatting wrong")
	}
}

func TestMeanStddev(t *testing.T) {
	s := FromFloats([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m := s.Mean(); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if sd := s.Stddev(); math.Abs(sd-2.138) > 0.01 {
		t.Errorf("Stddev = %v, want ≈2.138", sd)
	}
	if FromFloats([]float64{1}).Stddev() != 0 {
		t.Error("single-value stddev should be 0")
	}
}

func TestCountAbove(t *testing.T) {
	s := FromFloats([]float64{1, 2, 3, 4, 5})
	if n := s.CountAbove(3); n != 2 {
		t.Errorf("CountAbove(3) = %d, want 2 (strictly greater)", n)
	}
	if n := s.CountAbove(0); n != 5 {
		t.Errorf("CountAbove(0) = %d, want 5", n)
	}
	if n := s.CountAbove(5); n != 0 {
		t.Errorf("CountAbove(5) = %d, want 0", n)
	}
}

func TestTukeyNoOutliers(t *testing.T) {
	s := FromFloats([]float64{1, 2, 3, 4, 5})
	b := s.Tukey()
	if b.Outliers != 0 {
		t.Errorf("outliers = %d, want 0", b.Outliers)
	}
	if b.LoWhisker != 1 || b.HiWhisker != 5 {
		t.Errorf("whiskers = %v,%v, want 1,5", b.LoWhisker, b.HiWhisker)
	}
	if b.Q1 != 2 || b.Median != 3 || b.Q3 != 4 {
		t.Errorf("quartiles = %v,%v,%v", b.Q1, b.Median, b.Q3)
	}
}

func TestTukeyDetectsOutlier(t *testing.T) {
	vals := []float64{10, 11, 12, 13, 14, 15, 16, 17, 18, 100}
	s := FromFloats(vals)
	b := s.Tukey()
	if b.Outliers != 1 {
		t.Errorf("outliers = %d, want 1", b.Outliers)
	}
	if b.HiWhisker == 100 {
		t.Error("whisker should exclude the outlier")
	}
	if b.Max != 100 {
		t.Errorf("max = %v, want 100", b.Max)
	}
}

func TestTukeyWhiskerIsDataPoint(t *testing.T) {
	// Whiskers must land on actual data points, not the fence itself.
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 50}
	b := FromFloats(vals).Tukey()
	found := false
	for _, v := range vals {
		if v == b.HiWhisker {
			found = true
		}
	}
	if !found {
		t.Errorf("HiWhisker %v is not a data point", b.HiWhisker)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		frac := func(x float64) float64 { return math.Abs(x) - math.Floor(math.Abs(x)) }
		a, b := frac(q1), frac(q2)
		if a > b {
			a, b = b, a
		}
		s := FromFloats(vals)
		qa, qb := s.Quantile(a), s.Quantile(b)
		return qa <= qb && qa >= s.Min() && qb <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Values() is sorted and preserves multiset size.
func TestValuesSortedProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0:0]
		for _, v := range vals {
			if !math.IsNaN(v) {
				clean = append(clean, v)
			}
		}
		s := FromFloats(clean)
		got := s.Values()
		return len(got) == len(clean) && sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromDurations(t *testing.T) {
	s := FromDurations([]time.Duration{time.Millisecond, 3 * time.Millisecond})
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Max() != float64(3*time.Millisecond) {
		t.Errorf("max = %v", s.Max())
	}
}

func TestDurationRow(t *testing.T) {
	s := FromDurations([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	row := s.Tukey().DurationRow("seg")
	if row == "" || len(row) < 40 {
		t.Errorf("row too short: %q", row)
	}
}

func TestHistogram(t *testing.T) {
	s := FromFloats([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	h := s.Histogram(5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total = %d, want 10", total)
	}
	if h.Counts[0] != 2 || h.Counts[4] != 2 {
		t.Errorf("bins = %v", h.Counts)
	}
	if h.Render(20) == "" {
		t.Error("empty render")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	s := FromFloats([]float64{5, 5, 5})
	h := s.Histogram(4)
	if h.Counts[0] != 3 {
		t.Errorf("degenerate histogram = %v", h.Counts)
	}
	if NewSample().Histogram(3).Render(10) == "" {
		t.Error("empty histogram should still render")
	}
}

func TestSampleResetKeepsBuffer(t *testing.T) {
	s := NewSampleCap(8)
	for i := 0; i < 8; i++ {
		s.Add(float64(i))
	}
	if s.Median() != 3.5 {
		t.Fatalf("median = %v", s.Median())
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Reset()
		for i := 0; i < 8; i++ {
			s.Add(float64(i * 2))
		}
	})
	if allocs != 0 {
		t.Fatalf("Reset+refill allocates %.1f/op, want 0", allocs)
	}
	if s.Len() != 8 || s.Median() != 7 {
		t.Fatalf("after reuse: len=%d median=%v", s.Len(), s.Median())
	}
}
