// Package chainmon is an online latency monitor for time-sensitive event
// chains in safety-critical, middleware-centric systems — a from-scratch Go
// reproduction of "Online latency monitoring of time-sensitive event chains
// in safety-critical applications" (Peeck, Schlatow, Ernst; DATE 2021).
//
// An event chain (sensor → fusion → classification → detection → planning)
// carries a weakly-hard end-to-end latency requirement: its budget B_e2e
// may be exceeded at most m times in any k consecutive executions. The
// chain is split into alternating local segments (receive event →
// publication event on one ECU, possibly across several processes) and
// remote segments (publication → reception on another ECU). Each segment is
// monitored decentrally:
//
//   - local segments through shared-memory event rings drained by a
//     high-priority monitor thread with a timeout queue (LocalMonitor);
//   - remote segments at the receiver by interpreting the transmitted
//     source timestamps of PTP-synchronized senders (RemoteMonitor) — the
//     paper shows plain inter-arrival supervision (InterArrivalMonitor)
//     cannot detect consecutive misses.
//
// When a segment's end event does not occur within its monitored deadline
// d_mon, a temporal exception is raised; the application handler either
// recovers with substitute data or the miss propagates along the chain so
// the per-segment (m,k) accounting stays sound end to end. Segment
// deadlines are determined offline from recorded traces by the budget
// package's constraint-satisfaction solvers (Eqs. 2–7 of the paper).
//
// The package re-exports the public surface of the internal packages:
//
//   - the deterministic simulation substrate (Kernel, Processor, Domain,
//     ECU, Node, Publisher, Subscription, Device);
//   - the monitoring core (LocalMonitor, RemoteMonitor, Chain, Handler);
//   - weakly-hard constraint algebra and the budgeting solvers;
//   - trace recording and the perception use case of the paper.
//
// See examples/quickstart for a minimal monitored chain and
// cmd/experiments for the full reproduction of the paper's evaluation.
package chainmon

import (
	"chainmon/internal/budget"
	"chainmon/internal/dds"
	"chainmon/internal/lidar"
	"chainmon/internal/monitor"
	"chainmon/internal/netsim"
	"chainmon/internal/perception"
	"chainmon/internal/realtime"
	"chainmon/internal/rta"
	"chainmon/internal/shmring"
	"chainmon/internal/sim"
	"chainmon/internal/stats"
	"chainmon/internal/telemetry"
	"chainmon/internal/trace"
	"chainmon/internal/vclock"
	"chainmon/internal/weaklyhard"
)

// Simulation substrate.
type (
	// Kernel is the deterministic discrete-event simulation core.
	Kernel = sim.Kernel
	// Time is a point in virtual time (nanoseconds).
	Time = sim.Time
	// Duration is a span of virtual time (time.Duration).
	Duration = sim.Duration
	// RNG is a deterministic per-component random stream.
	RNG = sim.RNG
	// Dist is a duration distribution (execution times, jitters).
	Dist = sim.Dist
	// Processor models one ECU's cores with global fixed-priority
	// preemptive scheduling.
	Processor = sim.Processor
	// Thread is a schedulable entity on a Processor.
	Thread = sim.Thread
)

// Middleware.
type (
	// Domain is the set of ECUs and the communication fabric.
	Domain = dds.Domain
	// ECU is one processing resource with a PTP-synchronized clock.
	ECU = dds.ECU
	// Node is a single-threaded process with an executor.
	Node = dds.Node
	// Publisher writes samples on a topic.
	Publisher = dds.Publisher
	// Subscription receives samples of a topic.
	Subscription = dds.Subscription
	// Sample is one published message.
	Sample = dds.Sample
	// Device is a periodic sensor (e.g. a lidar).
	Device = dds.Device
	// LinkConfig parameterizes a network link.
	LinkConfig = netsim.Config
	// ClockConfig parameterizes a PTP-synchronized clock.
	ClockConfig = vclock.Config
)

// Monitoring core.
type (
	// LocalMonitor supervises the local segments of one ECU.
	LocalMonitor = monitor.LocalMonitor
	// LocalSegment is one monitored local segment.
	LocalSegment = monitor.LocalSegment
	// RemoteMonitor supervises a remote segment (synchronization-based).
	RemoteMonitor = monitor.RemoteMonitor
	// KeyedRemoteMonitor supervises a topic with multiple writers, one
	// monitor per DDS topic key (§IV-B.2).
	KeyedRemoteMonitor = monitor.KeyedRemoteMonitor
	// InterArrivalMonitor is the DDS-deadline-QoS-style baseline.
	InterArrivalMonitor = monitor.InterArrivalMonitor
	// SegmentConfig parameterizes a monitored segment.
	SegmentConfig = monitor.SegmentConfig
	// SegmentSpec declares one segment for the declarative chain builder.
	SegmentSpec = monitor.SegmentSpec
	// ChainSpec declares a full event chain for BuildChain.
	ChainSpec = monitor.ChainSpec
	// BuiltChain is the wired result of BuildChain.
	BuiltChain = monitor.BuiltChain
	// SegmentKind distinguishes local and remote segments.
	SegmentKind = monitor.SegmentKind
	// Handler is an application exception handler.
	Handler = monitor.Handler
	// Recovery is substitute data returned by a handler.
	Recovery = monitor.Recovery
	// ExceptionContext is passed to handlers.
	ExceptionContext = monitor.ExceptionContext
	// Resolution is the recorded outcome of one segment activation.
	Resolution = monitor.Resolution
	// Chain tracks the end-to-end state of one event chain.
	Chain = monitor.Chain
	// Supervisor is the system-level entity deriving an operating mode
	// from the chain-level weakly-hard counters.
	Supervisor = monitor.Supervisor
	// SystemMode is the supervisor's operating mode.
	SystemMode = monitor.SystemMode
	// ModeChange records one supervisor transition.
	ModeChange = monitor.ModeChange
	// SegmentStats collects per-segment measurements.
	SegmentStats = monitor.SegmentStats
	// RemoteVariant selects where remote timeout routines run.
	RemoteVariant = monitor.RemoteVariant
	// Status is a segment activation outcome.
	Status = monitor.Status
)

// Weakly-hard constraints and budgeting.
type (
	// Constraint is a weakly-hard (m,k) constraint.
	Constraint = weaklyhard.Constraint
	// Counter is an online sliding-window (m,k) monitor.
	Counter = weaklyhard.Counter
	// BudgetProblem is a Section III-C budgeting instance.
	BudgetProblem = budget.Problem
	// BudgetSegment is one segment's trace input to the solver.
	BudgetSegment = budget.SegmentInput
	// BudgetAssignment is a solver result.
	BudgetAssignment = budget.Assignment
	// RTATask is a sporadic task for fixed-priority response-time analysis
	// (used to bound d_ex analytically, per the paper's footnote 1).
	RTATask = rta.Task
	// RTAResult is one task's analysis outcome.
	RTAResult = rta.Result
	// MonitorHandlerSet derives d_ex bounds for a monitor thread's
	// exception handlers.
	MonitorHandlerSet = rta.MonitorHandlerSet
)

// Tracing, statistics, workload.
type (
	// Trace is a set of recorded segment latency series.
	Trace = trace.Trace
	// TraceRecorder observes an unmonitored run.
	TraceRecorder = trace.Recorder
	// StatsSample is a collection of measurements.
	StatsSample = stats.Sample
	// Boxplot is a Tukey five-number summary.
	Boxplot = stats.Boxplot
	// PointCloud is one lidar frame.
	PointCloud = lidar.PointCloud
	// BoundingBox is one detected obstacle.
	BoundingBox = lidar.BoundingBox
	// FrameMeta describes a frame's workload.
	FrameMeta = lidar.FrameMeta
	// SceneConfig parameterizes the synthetic lidar environment.
	SceneConfig = lidar.SceneConfig
	// CostModel maps perception workload to virtual execution times.
	CostModel = lidar.CostModel
	// PerceptionConfig parameterizes the Autoware-style use case.
	PerceptionConfig = perception.Config
	// PerceptionSystem is the built use case.
	PerceptionSystem = perception.System
	// PerceptionFrame is the payload flowing through the use case.
	PerceptionFrame = perception.FrameData
	// RealRing is the wall-clock wait-free SPSC event ring.
	RealRing = shmring.Ring
	// RealMonitor is the wall-clock monitor goroutine.
	RealMonitor = shmring.Monitor
	// RealtimeConfig parameterizes a wall-clock monitor run.
	RealtimeConfig = realtime.Config
	// RealtimeResult is the outcome of a wall-clock monitor run.
	RealtimeResult = realtime.Result
	// MetricsRegistry is the lock-free live-metrics table.
	MetricsRegistry = telemetry.Registry
	// TelemetrySink bundles the flight recorder and the metrics registry.
	TelemetrySink = telemetry.Sink
)

// Statuses and variants.
const (
	StatusOK        = monitor.StatusOK
	StatusRecovered = monitor.StatusRecovered
	StatusMissed    = monitor.StatusMissed

	VariantMonitorThread = monitor.VariantMonitorThread
	VariantDDSContext    = monitor.VariantDDSContext

	ModeNominal  = monitor.ModeNominal
	ModeDegraded = monitor.ModeDegraded
	ModeSafeStop = monitor.ModeSafeStop

	KindLocal  = monitor.KindLocal
	KindRemote = monitor.KindRemote
)

// Duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Segment names of the perception use case (Fig. 2 of the paper).
const (
	SegFrontRemote  = perception.SegFrontRemote
	SegRearRemote   = perception.SegRearRemote
	SegFusionFront  = perception.SegFusionFront
	SegFusionRear   = perception.SegFusionRear
	SegFusedRemote  = perception.SegFusedRemote
	SegObjectsLocal = perception.SegObjectsLocal
	SegGroundLocal  = perception.SegGroundLocal
)

// NewKernel returns a fresh simulation kernel at time zero.
func NewKernel() *Kernel { return sim.NewKernel() }

// NewRNG returns a seeded deterministic random stream.
func NewRNG(seed int64) *RNG { return sim.NewRNG(seed) }

// NewDomain creates a middleware domain on the kernel.
func NewDomain(k *Kernel, rng *RNG) *Domain { return dds.NewDomain(k, rng) }

// NewLocalMonitor creates the high-priority monitor thread of an ECU.
func NewLocalMonitor(ecu *ECU) *LocalMonitor { return monitor.NewLocalMonitor(ecu) }

// NewRemoteMonitor attaches a synchronization-based monitor to the
// subscription.
func NewRemoteMonitor(sub *Subscription, cfg SegmentConfig, v RemoteVariant, lm *LocalMonitor) *RemoteMonitor {
	return monitor.NewRemoteMonitor(sub, cfg, v, lm)
}

// NewInterArrivalMonitor attaches the inter-arrival baseline supervisor.
func NewInterArrivalMonitor(sub *Subscription, tMax Duration) *InterArrivalMonitor {
	return monitor.NewInterArrivalMonitor(sub, tMax)
}

// NewKeyedRemoteMonitor attaches one synchronization-based monitor per
// observed writer of the subscription's topic.
func NewKeyedRemoteMonitor(sub *Subscription, cfg SegmentConfig, v RemoteVariant, lm *LocalMonitor, onCreate func(writer string, m *RemoteMonitor)) *KeyedRemoteMonitor {
	return monitor.NewKeyedRemoteMonitor(sub, cfg, v, lm, onCreate)
}

// NewChain creates an event chain tracker.
func NewChain(name string, be2e, bseg Duration, c Constraint) *Chain {
	return monitor.NewChain(name, be2e, bseg, c)
}

// NewSupervisor creates the system-level mode supervisor.
func NewSupervisor(k *Kernel, safeStopAfter int) *Supervisor {
	return monitor.NewSupervisor(k, safeStopAfter)
}

// BuildChain validates a chain specification and wires monitors,
// propagation and chain accounting in one call.
func BuildChain(spec ChainSpec, monitors map[*ECU]*LocalMonitor) (*BuiltChain, error) {
	return monitor.BuildChain(spec, monitors)
}

// NewCounter creates an online (m,k) window counter.
func NewCounter(c Constraint) *Counter { return weaklyhard.NewCounter(c) }

// NewTraceRecorder creates a recorder on the kernel.
func NewTraceRecorder(k *Kernel) *TraceRecorder { return trace.NewRecorder(k) }

// SolveBudgetIndependent solves the budgeting CSP with propagation factors
// forced to zero (the paper's per-segment decomposition).
func SolveBudgetIndependent(p BudgetProblem) BudgetAssignment { return budget.SolveIndependent(p) }

// SolveBudgetExact solves the budgeting CSP by branch-and-bound;
// maxCandidates > 0 reduces each segment's candidate set to quantiles.
func SolveBudgetExact(p BudgetProblem, maxCandidates int) BudgetAssignment {
	return budget.SolveExact(p, maxCandidates)
}

// SolveBudgetGreedy runs the propagation-aware heuristic.
func SolveBudgetGreedy(p BudgetProblem) BudgetAssignment { return budget.SolveGreedy(p) }

// Schedulable reports whether a chain's budgeting CSP has a solution.
func Schedulable(p BudgetProblem) (bool, BudgetAssignment) { return budget.Schedulable(p) }

// BuildPerception assembles the Autoware.Auto-style use case of the paper.
func BuildPerception(cfg PerceptionConfig) *PerceptionSystem { return perception.Build(cfg) }

// DefaultPerceptionConfig is calibrated to reproduce the evaluation.
func DefaultPerceptionConfig() PerceptionConfig { return perception.DefaultConfig() }

// NewRealMonitor creates the wall-clock shared-memory monitor.
func NewRealMonitor() *RealMonitor { return shmring.NewMonitor() }

// RunRealtime executes the wall-clock monitor scenario; sink (may be nil)
// receives live metrics — and, with a full sink, a causal flow trace — and
// is safe to scrape concurrently during the run.
func RunRealtime(cfg RealtimeConfig, sink *TelemetrySink) (RealtimeResult, error) {
	return realtime.Run(cfg, sink)
}

// DefaultRealtimeConfig is sized for a ~1 s smoke run.
func DefaultRealtimeConfig() RealtimeConfig { return realtime.DefaultConfig() }

// NewMetricsRegistry creates an empty live-metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// EthernetLink returns the default inter-ECU link configuration.
func EthernetLink() LinkConfig { return netsim.Ethernet() }

// LoopbackLink returns the default intra-ECU link configuration.
func LoopbackLink() LinkConfig { return netsim.Loopback() }
