package chainmon

import (
	"io"
	"testing"
	"time"

	"chainmon/internal/budget"
	"chainmon/internal/experiments"
	"chainmon/internal/shmring"
	"chainmon/internal/sim"
	"chainmon/internal/weaklyhard"
)

// The benchmarks below regenerate every figure of the paper's evaluation;
// run them with -benchtime=1x for one full experiment per figure, or use
// cmd/experiments for the full-length runs with printed reports.

// BenchmarkFig9SegmentLatencies reproduces Fig. 9: segment latencies on
// ECU2 with and without monitoring (4700 activations in the paper; a
// shorter run per iteration here).
func BenchmarkFig9SegmentLatencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig9(400, int64(i)+1, 1)
		if sim.Duration(r.ObjectsMon.Max()) > 105*sim.Millisecond {
			b.Fatal("monitored latency bound violated")
		}
		r.Report(io.Discard)
	}
}

// BenchmarkFig10ExceptionLatencies reproduces Fig. 10: the latency of the
// temporal exception cases only.
func BenchmarkFig10ExceptionLatencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig9(400, int64(i)+1, 1)
		if r.ObjectsExc.Len() == 0 {
			b.Fatal("no exception cases")
		}
		r.ReportFig10(io.Discard)
	}
}

// BenchmarkFig11Overheads reproduces Fig. 11 on the real wall-clock
// implementation: posting overheads, monitor latency and execution time.
func BenchmarkFig11Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig11(200, 100*time.Microsecond)
		if r.MonLatency.Len() == 0 {
			b.Fatal("no measurements")
		}
		r.Report(io.Discard)
	}
}

// BenchmarkFig12RemoteExceptionEntry reproduces Fig. 12: exception entry
// latency of remote monitoring in the DDS context vs the monitor thread,
// across load levels.
func BenchmarkFig12RemoteExceptionEntry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig12(160, int64(i)+1, []float64{0, 0.9}, 1)
		r.Report(io.Discard)
	}
}

// BenchmarkFig6RemoteMonitorComparison reproduces the Fig. 6 / §III-B
// comparison of inter-arrival vs synchronization-based monitoring.
func BenchmarkFig6RemoteMonitorComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig6(120, int64(i)+1, 1)
		experiments.ReportFig6(io.Discard, rows)
	}
}

// BenchmarkFig3ErrorPropagation reproduces the Fig. 3 error-case chain
// execution (recovery at the fusion, explicit propagation at the fused
// remote segment).
func BenchmarkFig3ErrorPropagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig3(int64(i) + 1)
		if !r.RearRecovered || !r.FusedPropagated {
			b.Fatal("error-case narrative did not reproduce")
		}
		r.Report(io.Discard)
	}
}

// BenchmarkBudgetSolver reproduces the Section III-C budgeting experiment:
// trace recording plus the (m,k) × B_e2e schedulability sweep.
func BenchmarkBudgetSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunBudgeting(200, int64(i)+1)
		if len(r.Cells) == 0 {
			b.Fatal("no budget cells")
		}
		r.Report(io.Discard)
	}
}

// BenchmarkAblationEpsilon runs the ε-term ablation of the sync-based
// deadline formula.
func BenchmarkAblationEpsilon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunEpsilonAblation(150, int64(i)+1,
			[]time.Duration{0, 200 * time.Microsecond, 500 * time.Microsecond}, 1)
		if rows[0].CompensatedFalsePos != 0 {
			b.Fatal("false positives with the ε term")
		}
	}
}

// BenchmarkAblationDeadlineSweep runs the d_mon vs miss-rate trade-off.
func BenchmarkAblationDeadlineSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunDeadlineSweep(200, int64(i)+1,
			[]time.Duration{60 * time.Millisecond, 100 * time.Millisecond, 140 * time.Millisecond}, 1)
	}
}

// BenchmarkAblationBufferOrder runs the fixed-processing-order ablation.
func BenchmarkAblationBufferOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunOrderAblation(200, int64(i)+1, 1)
	}
}

// --- Microbenchmarks of the performance-critical primitives. ---

// BenchmarkRingPost measures one start-event post into the wait-free ring
// (the paper's "start-event overhead", sans monitor wakeup).
func BenchmarkRingPost(b *testing.B) {
	r := shmring.NewRing(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Post(shmring.Event{Act: uint64(i)}) {
			// Drain in bulk when full (consumer role).
			for {
				if _, ok := r.Pop(); !ok {
					break
				}
			}
		}
	}
}

// BenchmarkRingPostPop measures a post/pop round trip.
func BenchmarkRingPostPop(b *testing.B) {
	r := shmring.NewRing(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Post(shmring.Event{Act: uint64(i)})
		r.Pop()
	}
}

// BenchmarkMonitorWakeLatency measures the full post→handled path of the
// real monitor: PostStart, semaphore wake, drain, timeout arm.
func BenchmarkMonitorWakeLatency(b *testing.B) {
	m := shmring.NewMonitor()
	seg := m.AddSegment("bench", time.Second, 1<<16, nil)
	m.Start()
	defer m.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg.PostStart(uint64(i))
		seg.PostEnd(uint64(i))
	}
}

// BenchmarkMKCounter measures the online (m,k) sliding-window record.
func BenchmarkMKCounter(b *testing.B) {
	ctr := weaklyhard.NewCounter(weaklyhard.Constraint{M: 3, K: 20})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr.Record(i%7 == 0)
	}
}

// BenchmarkWindowAnalysis measures the offline window scan used by the
// budgeting verifier.
func BenchmarkWindowAnalysis(b *testing.B) {
	misses := make([]bool, 4700)
	for i := range misses {
		misses[i] = i%5 == 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		weaklyhard.MaxMissesInAnyWindow(misses, 10)
	}
}

// BenchmarkSolveExact measures the branch-and-bound solver on a
// three-segment propagating instance.
func BenchmarkSolveExact(b *testing.B) {
	p := budget.Problem{
		Be2e:       600,
		Constraint: weaklyhard.Constraint{M: 1, K: 5},
	}
	rng := sim.NewRNG(1)
	for s := 0; s < 3; s++ {
		lat := make([]int64, 200)
		for i := range lat {
			lat[i] = int64(50 + rng.Intn(100))
		}
		p.Segments = append(p.Segments, budget.SegmentInput{Name: "s", Latencies: lat, Propagation: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a := budget.SolveExact(p, 24); !a.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkSolveGreedy measures the heuristic on the same instance shape.
func BenchmarkSolveGreedy(b *testing.B) {
	p := budget.Problem{
		Be2e:       600,
		Constraint: weaklyhard.Constraint{M: 1, K: 5},
	}
	rng := sim.NewRNG(1)
	for s := 0; s < 3; s++ {
		lat := make([]int64, 200)
		for i := range lat {
			lat[i] = int64(50 + rng.Intn(100))
		}
		p.Segments = append(p.Segments, budget.SegmentInput{Name: "s", Latencies: lat, Propagation: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		budget.SolveGreedy(p)
	}
}

// BenchmarkSimulationThroughput measures raw kernel event throughput.
func BenchmarkSimulationThroughput(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			k.After(100, fn)
		}
	}
	b.ResetTimer()
	k.After(100, fn)
	k.Run()
}
