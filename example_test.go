package chainmon_test

import (
	"fmt"

	"chainmon"
)

// Example demonstrates the smallest complete monitored chain: a periodic
// sensor, one remote segment supervised by interpreting the transmitted
// timestamps, and one local segment supervised through the monitor thread.
// One frame is lost on purpose; the temporal exception propagates and is
// counted against the chain's weakly-hard constraint.
func Example() {
	k := chainmon.NewKernel()
	domain := chainmon.NewDomain(k, chainmon.NewRNG(1))
	ecu := domain.NewECU("ecu", 2, chainmon.ClockConfig{Epsilon: 50 * chainmon.Microsecond})

	const period = 100 * chainmon.Millisecond
	sensor := domain.NewDevice("sensor", "frames", period, chainmon.ClockConfig{})
	sensor.Payload = func(n uint64) (any, int) { return n, 256 }
	sensor.Perturb = func(n uint64) (bool, chainmon.Duration) { return n == 3, 0 } // frame 3 lost

	node := ecu.NewNode("worker", 100)
	out := node.NewPublisher("results")
	in := node.Subscribe("frames",
		func(*chainmon.Sample) chainmon.Duration { return 5 * chainmon.Millisecond },
		func(s *chainmon.Sample) { out.Publish(s.Activation, s.Data, 64) })

	mk := chainmon.Constraint{M: 1, K: 5}
	built, err := chainmon.BuildChain(chainmon.ChainSpec{
		Name: "sensor→result", Be2e: 45 * chainmon.Millisecond, Period: period, Constraint: mk,
		Segments: []chainmon.SegmentSpec{
			{Name: "s0", Kind: chainmon.KindRemote, DMon: 10 * chainmon.Millisecond, Sub: in},
			{Name: "s1", Kind: chainmon.KindLocal, DMon: 30 * chainmon.Millisecond,
				StartSub: in, EndPub: out},
		},
	}, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	built.Remotes["s0"].SetLastActivation(9)

	sensor.Start(0)
	k.At(chainmon.Time(10)*chainmon.Time(period), sensor.Stop)
	k.RunFor(12 * 100 * chainmon.Millisecond)

	exec, _, viol := built.Chain.Totals()
	fmt.Printf("executions=%d violations=%d\n", exec, viol)
	// Output: executions=10 violations=1
}

// Example_budgeting shows the Section III-C flow: minimum segment deadlines
// from recorded latencies under a weakly-hard constraint.
func Example_budgeting() {
	p := chainmon.BudgetProblem{
		Segments: []chainmon.BudgetSegment{
			{Name: "remote", Latencies: []int64{10, 12, 40, 11, 10, 41, 12, 11}, Propagation: 1},
			{Name: "local", Latencies: []int64{20, 22, 21, 60, 20, 21, 59, 22}, Propagation: 1},
		},
		DEx:        2,
		Be2e:       120,
		Constraint: chainmon.Constraint{M: 1, K: 4},
	}
	ok, a := chainmon.Schedulable(p)
	fmt.Printf("schedulable=%v sum=%d\n", ok, a.Sum)
	// Output: schedulable=true sum=104
}

// Example_weaklyHard shows the online (m,k) window counter that exception
// handlers receive their miss budget from.
func Example_weaklyHard() {
	ctr := chainmon.NewCounter(chainmon.Constraint{M: 1, K: 3})
	fmt.Println(ctr.Record(true), ctr.Violated())  // one miss: within budget
	fmt.Println(ctr.Record(true), ctr.Violated())  // second miss in window: violated
	fmt.Println(ctr.Record(false), ctr.Violated()) // window still holds both
	fmt.Println(ctr.Record(false), ctr.Violated()) // oldest miss slid out
	// Output:
	// 1 false
	// 2 true
	// 2 true
	// 1 false
}
