module chainmon

go 1.22
