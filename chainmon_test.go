package chainmon

import (
	"testing"
)

// These tests exercise the library exactly as a downstream user would,
// through the public facade only.

// buildPipeline wires a sensor → processor → sink chain with one remote and
// one local monitored segment, mirroring the quickstart example.
func buildPipeline(t *testing.T, seed int64) (k *Kernel, sensor *Device, remote *RemoteMonitor, local *LocalSegment, chain *Chain, results *int) {
	t.Helper()
	k = NewKernel()
	domain := NewDomain(k, NewRNG(seed))
	clock := ClockConfig{Epsilon: 50 * Microsecond}
	ecu := domain.NewECU("ecu-a", 2, clock)

	const period = 100 * Millisecond
	sensor = domain.NewDevice("sensor", "frames", period, clock)
	sensor.Payload = func(n uint64) (any, int) { return n, 512 }

	processor := ecu.NewNode("processor", 100)
	sink := ecu.NewNode("sink", 90)
	resultPub := processor.NewPublisher("results")
	frameSub := processor.Subscribe("frames",
		func(s *Sample) Duration { return 5 * Millisecond },
		func(s *Sample) { resultPub.Publish(s.Activation, s.Data, 64) })
	n := 0
	results = &n
	sink.Subscribe("results", nil, func(s *Sample) { n++ })

	lm := NewLocalMonitor(ecu)
	mk := Constraint{M: 1, K: 5}
	local = lm.AddSegment(SegmentConfig{
		Name: "s1", DMon: 30 * Millisecond, DEx: Millisecond,
		Period: period, Constraint: mk,
	})
	local.StartOnDeliver(frameSub)
	local.EndOnPublish(resultPub)

	remote = NewRemoteMonitor(frameSub, SegmentConfig{
		Name: "s0", DMon: 10 * Millisecond, DEx: Millisecond,
		Period: period, Constraint: mk,
	}, VariantMonitorThread, lm)
	remote.PropagateTo(local)

	chain = NewChain("c", 42*Millisecond, period, mk)
	chain.Append(remote).Append(local)
	chain.Seal()
	return k, sensor, remote, local, chain, results
}

func TestPublicAPIEndToEnd(t *testing.T) {
	k, sensor, remote, local, chain, results := buildPipeline(t, 1)
	sensor.Start(0)
	k.At(Time(20)*Time(100*Millisecond), func() { sensor.Stop(); remote.Stop() })
	k.RunFor(25 * 100 * Millisecond)

	if *results != 20 {
		t.Errorf("sink received %d results, want 20", *results)
	}
	exec, rec, viol := chain.Totals()
	if exec != 20 || rec != 0 || viol != 0 {
		t.Errorf("chain totals = %d,%d,%d", exec, rec, viol)
	}
	if !chain.BudgetSatisfied() {
		t.Error("10+1+30+1 ≤ 42 should satisfy the budget")
	}
	if local.Stats().Exceptions() != 0 {
		t.Error("fault-free run raised exceptions")
	}
	if local.Counter().Misses() != 0 {
		t.Error("window counter should be clean")
	}
}

func TestPublicAPIFaultInjection(t *testing.T) {
	k, sensor, remote, _, chain, _ := buildPipeline(t, 2)
	sensor.Perturb = func(n uint64) (bool, Duration) { return n == 5 || n == 6, 0 }
	sensor.Start(0)
	k.At(Time(20)*Time(100*Millisecond), func() { sensor.Stop(); remote.Stop() })
	k.RunFor(25 * 100 * Millisecond)

	exec, _, viol := chain.Totals()
	if exec != 20 {
		t.Errorf("executions = %d", exec)
	}
	if viol != 2 {
		t.Errorf("violations = %d, want 2 (two lost frames)", viol)
	}
	// Two consecutive misses violate (1,5): the chain counter must have
	// registered a window violation.
	_, _, winViol := chain.Counter().Totals()
	if winViol == 0 {
		t.Error("consecutive misses must violate the (1,5) window")
	}
}

func TestPublicAPIBudgetSolvers(t *testing.T) {
	p := BudgetProblem{
		Segments: []BudgetSegment{
			{Name: "a", Latencies: []int64{10, 20, 10, 20}, Propagation: 1},
			{Name: "b", Latencies: []int64{5, 5, 30, 5}, Propagation: 1},
		},
		Be2e:       100,
		Constraint: Constraint{M: 1, K: 2},
	}
	if ok, a := Schedulable(p); !ok {
		t.Fatalf("not schedulable: %s", a.Reason)
	}
	ind := SolveBudgetIndependent(p)
	gr := SolveBudgetGreedy(p)
	ex := SolveBudgetExact(p, 0)
	if !ind.Feasible || !gr.Feasible || !ex.Feasible {
		t.Fatalf("solvers disagree: %v / %v / %v", ind, gr, ex)
	}
	if ex.Sum > gr.Sum {
		t.Errorf("exact %d worse than greedy %d", ex.Sum, gr.Sum)
	}
}

func TestPublicAPICounterAndStats(t *testing.T) {
	ctr := NewCounter(Constraint{M: 1, K: 3})
	ctr.Record(true)
	ctr.Record(true)
	if !ctr.Violated() {
		t.Error("counter should be violated")
	}

	k := NewKernel()
	rec := NewTraceRecorder(k)
	_ = rec

	if EthernetLink().BCRT <= 0 || LoopbackLink().BCRT <= 0 {
		t.Error("link presets broken")
	}
}

func TestPublicAPIPerceptionDefaults(t *testing.T) {
	cfg := DefaultPerceptionConfig()
	cfg.Frames = 50
	s := BuildPerception(cfg)
	s.Run()
	if s.PlanDelivered == 0 {
		t.Error("no frames reached the plan service")
	}
	if s.SegObjects.Stats().Latencies().Len() == 0 {
		t.Error("no monitored latencies")
	}
}

func TestPublicAPIRealMonitor(t *testing.T) {
	m := NewRealMonitor()
	seg := m.AddSegment("s", Second, 64, nil)
	m.Start()
	seg.PostStart(0)
	seg.PostEnd(0)
	m.Stop()
	ms := seg.Measurements()
	if len(ms.StartPost) != 1 || len(ms.EndPost) != 1 {
		t.Error("real monitor measurements missing")
	}
}
