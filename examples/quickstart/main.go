// Quickstart: a minimal monitored event chain.
//
// A sensor on its own resource publishes a frame every 100 ms over the
// network to a processing node on ECU "A"; the node computes for a
// data-dependent time and publishes its result to a sink. The chain is
// split into one remote segment (sensor → processor reception, monitored by
// interpreting the transmitted timestamps) and one local segment
// (processor reception → result publication, monitored through the
// shared-memory monitor thread).
//
// Faults are injected — a lost frame and an overlong computation — and the
// monitors raise temporal exceptions: the remote one recovers with held-over
// data, the local one propagates by omitting the late publication.
package main

import (
	"fmt"

	"chainmon"
)

func main() {
	k := chainmon.NewKernel()
	domain := chainmon.NewDomain(k, chainmon.NewRNG(1))

	// Two ECUs with PTP-synchronized clocks (ε = 50 µs).
	clock := chainmon.ClockConfig{Epsilon: 50 * chainmon.Microsecond}
	ecuA := domain.NewECU("ecu-a", 2, clock)

	// The sensor: a periodic device publishing "frames".
	const period = 100 * chainmon.Millisecond
	sensor := domain.NewDevice("sensor", "frames", period, clock)
	sensor.Payload = func(n uint64) (any, int) { return fmt.Sprintf("frame-%d", n), 1024 }
	// Fault 1: frame 7 is lost.
	sensor.Perturb = func(n uint64) (bool, chainmon.Duration) { return n == 7, 0 }

	// The processing node and the sink.
	processor := ecuA.NewNode("processor", 100)
	sink := ecuA.NewNode("sink", 90)
	resultPub := processor.NewPublisher("results")
	frameSub := processor.Subscribe("frames",
		func(s *chainmon.Sample) chainmon.Duration {
			if s.Activation == 13 {
				// Fault 2: frame 13 takes far too long to process.
				return 80 * chainmon.Millisecond
			}
			return 10 * chainmon.Millisecond
		},
		func(s *chainmon.Sample) { resultPub.Publish(s.Activation, s.Data, 64) })
	results := 0
	sink.Subscribe("results", nil, func(s *chainmon.Sample) { results++ })

	// Monitoring: one monitor thread on the ECU, one local segment
	// (reception → publication) and one remote segment on the sensor link.
	lm := chainmon.NewLocalMonitor(ecuA)
	mk := chainmon.Constraint{M: 1, K: 5} // tolerate 1 miss per 5 executions

	local := lm.AddSegment(chainmon.SegmentConfig{
		Name: "s1/process", DMon: 30 * chainmon.Millisecond, DEx: chainmon.Millisecond,
		Period: period, Constraint: mk,
		Handler: func(ctx *chainmon.ExceptionContext) *chainmon.Recovery {
			fmt.Printf("%v  local exception  act=%d misses=%d → propagate (omit publication)\n",
				ctx.RaisedAt, ctx.Activation, ctx.Misses)
			return nil
		},
	})
	local.StartOnDeliver(frameSub)
	local.EndOnPublish(resultPub)

	remote := chainmon.NewRemoteMonitor(frameSub, chainmon.SegmentConfig{
		Name: "s0/sensor-link", DMon: 10 * chainmon.Millisecond, DEx: chainmon.Millisecond,
		Period: period, Constraint: mk,
		Handler: func(ctx *chainmon.ExceptionContext) *chainmon.Recovery {
			fmt.Printf("%v  remote exception act=%d misses=%d → recover with held-over frame\n",
				ctx.RaisedAt, ctx.Activation, ctx.Misses)
			return &chainmon.Recovery{Data: "held-over", Size: 1024}
		},
	}, chainmon.VariantMonitorThread, lm)
	remote.PropagateTo(local)

	// The end-to-end chain: B_e2e = 40 ms split as 10 + 30.
	chain := chainmon.NewChain("sensor→result", 40*chainmon.Millisecond, period, mk)
	chain.Append(remote).Append(local)
	chain.Seal()

	// Run 20 frames.
	sensor.Start(0)
	k.At(chainmon.Time(20)*chainmon.Time(period), func() { sensor.Stop(); remote.Stop() })
	k.RunFor(25 * 100 * chainmon.Millisecond)

	fmt.Println()
	fmt.Print(chain.Summary())
	exec, rec, viol := chain.Totals()
	fmt.Printf("\nsink received %d results; chain: %d executions, %d recovered, %d violations\n",
		results, exec, rec, viol)
	fmt.Printf("remote segment: %s\n", remote.Stats().Latencies().Tukey().DurationRow("latency"))
	fmt.Printf("local segment:  %s\n", local.Stats().Latencies().Tukey().DurationRow("latency"))
}
