// Remotecompare: why inter-arrival supervision is not enough.
//
// A sender publishes a frame every 100 ms to a receiver on another ECU.
// After a while the network starts delivering each message 8 ms later than
// the previous one: consecutive arrivals stay 108 ms apart — comfortably
// within any reasonable inter-arrival bound — while the absolute latency
// grows without limit. The DDS-deadline-QoS-style inter-arrival monitor
// (t_max = 120 ms) stays silent; the paper's synchronization-based monitor,
// which interprets the transmitted timestamps of the PTP-synchronized
// sender, raises a temporal exception for every violated activation.
package main

import (
	"fmt"

	"chainmon"
)

const (
	period = 100 * chainmon.Millisecond
	dmon   = 20 * chainmon.Millisecond
	frames = 60
	// Lateness starts growing at this activation.
	driftFrom = 20
)

// driftJitter is a deterministic network-delay schedule: message i is held
// back netDelay(i) by the (increasingly congested) network. It implements
// chainmon.Dist so it can be installed as a link's jitter.
type driftJitter struct{ i uint64 }

func (d *driftJitter) Sample(*chainmon.RNG) chainmon.Duration {
	v := netDelay(d.i)
	d.i++
	return v
}
func (d *driftJitter) Bounds() (chainmon.Duration, chainmon.Duration) { return 0, 0 }
func (d *driftJitter) String() string                                 { return "drift" }

// buildRig creates one sender→receiver system and returns the kernel, the
// publisher and the subscription. The tx→rx link delivers message i with
// netDelay(i) of extra latency — after the sender stamped it.
func buildRig() (*chainmon.Kernel, *chainmon.Publisher, *chainmon.Subscription, *chainmon.LocalMonitor) {
	k := chainmon.NewKernel()
	domain := chainmon.NewDomain(k, chainmon.NewRNG(42))
	clock := chainmon.ClockConfig{Epsilon: 50 * chainmon.Microsecond}
	tx := domain.NewECU("tx", 2, clock)
	rx := domain.NewECU("rx", 2, clock)
	domain.SetLink("tx", "rx", chainmon.LinkConfig{
		BCRT:   300 * chainmon.Microsecond,
		Jitter: &driftJitter{},
	})
	sender := tx.NewNode("sender", 100)
	receiver := rx.NewNode("receiver", 100)
	pub := sender.NewPublisher("frames")
	sub := receiver.Subscribe("frames", nil, nil)
	return k, pub, sub, chainmon.NewLocalMonitor(rx)
}

// netDelay is the network's extra delivery delay for activation n.
func netDelay(n uint64) chainmon.Duration {
	if n < driftFrom {
		return 0
	}
	return chainmon.Duration(n-driftFrom+1) * 8 * chainmon.Millisecond
}

// drive publishes every frame exactly on the periodic grid: the source
// timestamps are honest; the lateness happens in the network.
func drive(k *chainmon.Kernel, pub *chainmon.Publisher) {
	for i := 0; i < frames; i++ {
		act := uint64(i)
		k.At(chainmon.Time(act)*chainmon.Time(period), func() {
			pub.Publish(act, nil, 256)
		})
	}
}

func main() {
	mk := chainmon.Constraint{M: 0, K: 1}

	// --- Inter-arrival supervision (the baseline). ---
	k1, pub1, sub1, _ := buildRig()
	ia := chainmon.NewInterArrivalMonitor(sub1, period+dmon)
	// Count only detections during the active stream (expiries after the
	// final publication are end-of-stream artifacts).
	iaDetections := 0
	lastSend := chainmon.Time(frames-1) * chainmon.Time(period)
	ia.OnDetect(func(at chainmon.Time) {
		if at <= lastSend {
			iaDetections++
		}
	})
	drive(k1, pub1)
	horizon := chainmon.Time(frames) * chainmon.Time(period+10*chainmon.Millisecond)
	k1.At(horizon, ia.Stop)
	k1.RunUntil(horizon.Add(chainmon.Second))

	// --- Synchronization-based monitoring (the paper's approach). ---
	k2, pub2, sub2, lm := buildRig()
	detected := 0
	rm := chainmon.NewRemoteMonitor(sub2, chainmon.SegmentConfig{
		Name: "tx→rx", DMon: dmon, Period: period, Constraint: mk,
		Handler: func(ctx *chainmon.ExceptionContext) *chainmon.Recovery {
			detected++
			if detected <= 3 || detected%10 == 0 {
				fmt.Printf("%v  sync-based exception for activation %d\n", ctx.RaisedAt, ctx.Activation)
			}
			return nil
		},
	}, chainmon.VariantMonitorThread, lm)
	rm.SetLastActivation(frames - 1)
	drive(k2, pub2)
	k2.At(horizon, rm.Stop)
	k2.RunUntil(horizon.Add(chainmon.Second))

	// --- The verdict. ---
	trueViolations := 0
	for n := uint64(0); n < frames; n++ {
		if netDelay(n) > dmon {
			trueViolations++
		}
	}
	fmt.Printf("\n%d of %d activations violated the %v deadline (lateness grows 8 ms per frame)\n",
		trueViolations, frames, dmon)
	fmt.Printf("inter-arrival monitor (t_max = %v): %d detections — blind to accumulating lateness\n",
		period+dmon, iaDetections)
	fmt.Printf("synchronization-based monitor:      %d temporal exceptions\n", detected)
	_, misses, _ := rm.Counter().Totals()
	fmt.Printf("recorded (m,k) misses:              %d\n", misses)
}
