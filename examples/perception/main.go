// Perception: the paper's Autoware.Auto use case with real geometry.
//
// Two simulated lidars produce synthetic point-cloud scenes (ground plane
// plus obstacles); the fusion service joins them, the classifier separates
// ground from non-ground points with a least-squares plane fit, the
// object-detection service clusters obstacles into bounding boxes, and the
// plan/visualization service consumes the results — all under the paper's
// latency monitoring with a 100 ms segment deadline.
//
// Unlike the statistical experiments (which use the workload cost model),
// this example runs the actual perception algorithms on materialized
// point clouds.
package main

import (
	"fmt"
	"sort"

	"chainmon"
)

func main() {
	cfg := chainmon.DefaultPerceptionConfig()
	cfg.Frames = 60
	cfg.RealCompute = true // materialize geometry, run the real algorithms
	cfg.FullChain = true

	// Recovery policy for the lidar links: repeat a held-over frame.
	heldOver := func(ctx *chainmon.ExceptionContext) *chainmon.Recovery {
		return &chainmon.Recovery{
			Data: &chainmon.PerceptionFrame{Points: 11000},
			Size: 16 * 11000,
		}
	}
	cfg.Handlers = map[string]chainmon.Handler{
		chainmon.SegFrontRemote: heldOver,
		chainmon.SegRearRemote:  heldOver,
	}

	s := chainmon.BuildPerception(cfg)

	// Peek at the detections as they reach the plan service, keeping the
	// built-in callback (it feeds the object tracker).
	frames := 0
	var lastBoxes int
	orig := s.PlanObjectsSub.Callback
	s.PlanObjectsSub.Callback = func(smp *chainmon.Sample) {
		orig(smp)
		fd := smp.Data.(*chainmon.PerceptionFrame)
		frames++
		lastBoxes = len(fd.Boxes)
		if smp.Activation%20 == 0 {
			fmt.Printf("act %3d: %2d obstacles detected", smp.Activation, len(fd.Boxes))
			for i, b := range fd.Boxes {
				if i >= 3 {
					fmt.Printf(" …")
					break
				}
				c := b.Center()
				fmt.Printf("  [%.1f,%.1f]", c.X, c.Y)
			}
			fmt.Println()
		}
	}

	end := s.Run()
	fmt.Printf("\nsimulated %v: %d object frames reached the plan service (last had %d boxes)\n",
		chainmon.Duration(end), frames, lastBoxes)

	fmt.Println("\nmonitored segments:")
	for _, st := range []*chainmon.SegmentStats{
		s.RemFront.Stats(), s.FusionFront.Stats(), s.RemFused.Stats(),
		s.SegObjects.Stats(), s.SegGround.Stats(),
	} {
		fmt.Printf("  %s\n", st.Summary())
	}
	fmt.Println()
	fmt.Print(s.ChainFront.Summary())

	// The plan service tracks objects across frames (stable IDs, velocity
	// estimates) — show the longest-lived tracks.
	fmt.Println("\nlongest-lived object tracks at the plan service:")
	tracks := s.Tracker.Tracks()
	sort.Slice(tracks, func(i, j int) bool { return tracks[i].Hits > tracks[j].Hits })
	for i, tk := range tracks {
		if i >= 5 {
			break
		}
		fmt.Printf("  track #%d: hits=%d center=[%.1f,%.1f] v=[%.1f,%.1f] m/s\n",
			tk.ID, tk.Hits, tk.Center.X, tk.Center.Y, tk.Velocity.X, tk.Velocity.Y)
	}
}
