// Budgeting: the paper's measurement-based deadline determination
// (Section III-C), end to end.
//
// Step 1 records an unmonitored trace of the perception chain. Step 2
// extends the recorded latencies by the exception-handling WCRT d_ex and
// solves the constraint satisfaction problem of Eqs. 2–7 for a weakly-hard
// (m,k) constraint and an end-to-end budget. Step 3 deploys the solved
// deadlines as the monitors' d_mon and validates online that the (m,k)
// constraint holds on a fresh run.
package main

import (
	"fmt"
	"log"

	"chainmon"
)

func main() {
	const frames = 600
	// The deployed requirement is (2,10); the deadlines are budgeted for
	// the stricter (1,10) so the fresh run has margin against the
	// measured trace not being fully representative.
	mk := chainmon.Constraint{M: 2, K: 10}
	mkSolve := chainmon.Constraint{M: 1, K: 10}
	be2e := 320 * chainmon.Millisecond
	dEx := chainmon.Millisecond

	// --- Step 1: record an unmonitored trace. ---
	cfg := chainmon.DefaultPerceptionConfig()
	cfg.Frames = frames
	cfg.Monitored = false
	cfg.Record = true
	rec := chainmon.BuildPerception(cfg)
	rec.Run()
	tr := rec.Recorder.Trace()

	segNames := []string{chainmon.SegFusionFront, chainmon.SegFusedRemote, chainmon.SegObjectsLocal}
	fmt.Printf("recorded %d frames; segment latency medians:\n", frames)
	for _, name := range segNames {
		st := tr.Segment(name)
		fmt.Printf("  %-20s med=%v max=%v (n=%d)\n", name,
			chainmon.Duration(st.Sample().Median()), chainmon.Duration(st.Sample().Max()),
			len(st.Latencies))
	}

	// --- Step 2: solve the budgeting CSP with propagation (p=1). ---
	problem := chainmon.BudgetProblem{
		DEx:        int64(dEx),
		Be2e:       int64(be2e),
		Bseg:       int64(cfg.Period) * 4,
		Constraint: mkSolve,
	}
	aligned := align(tr, segNames)
	for i, name := range segNames {
		problem.Segments = append(problem.Segments, chainmon.BudgetSegment{
			Name: name, Latencies: aligned[i], Propagation: 1,
		})
	}
	ok, sol := chainmon.Schedulable(problem)
	if !ok {
		log.Fatalf("chain not schedulable within %v under %v: %s", be2e, mk, sol.Reason)
	}
	fmt.Printf("\nschedulable under %v with B_e2e=%v: Σd=%v (%.0f%% of budget)\n",
		mkSolve, be2e, chainmon.Duration(sol.Sum), 100*float64(sol.Sum)/float64(problem.Be2e))
	for i, d := range sol.Deadlines {
		fmt.Printf("  %-20s d = %v\n", segNames[i], chainmon.Duration(d))
	}

	// --- Step 3: deploy the deadlines and validate online. ---
	run := chainmon.DefaultPerceptionConfig()
	run.Frames = frames
	run.Seed = 2 // a different day on the road
	run.FullChain = true
	run.Constraint = mk
	// Deploy: d_mon = d - d_ex for the solved segments.
	run.LocalDeadline = chainmon.Duration(sol.Deadlines[2]) - dEx
	run.RemoteDeadline = chainmon.Duration(sol.Deadlines[1]) - dEx
	s := chainmon.BuildPerception(run)
	s.Run()

	exec, recd, viol := s.ChainFront.Totals()
	_, _, winViol := s.ChainFront.Counter().Totals()
	fmt.Printf("\nonline validation over %d executions: %d recovered, %d violations,\n"+
		"(m,k) window violations: %d\n", exec, recd, viol, winViol)
	for _, seg := range s.ChainFront.Segments() {
		fmt.Printf("  %s\n", seg.Stats().Summary())
	}
	if winViol == 0 {
		fmt.Println("\nthe deployed deadlines kept the weakly-hard constraint ✓")
	} else {
		fmt.Println("\nthe fresh run violated the window constraint — the trace was not representative")
	}
}

// align restricts the segments to commonly recorded activations.
func align(tr *chainmon.Trace, names []string) [][]int64 {
	count := map[uint64]int{}
	for _, name := range names {
		for _, a := range tr.Segment(name).Activations {
			count[a]++
		}
	}
	out := make([][]int64, len(names))
	for i, name := range names {
		st := tr.Segment(name)
		for j, a := range st.Activations {
			if count[a] == len(names) {
				out[i] = append(out[i], int64(st.Latencies[j]))
			}
		}
	}
	return out
}
