// Multisensor: per-writer monitoring of a shared topic (§IV-B.2).
//
// Four corner radars of a vehicle publish their detections on the same
// "radar_tracks" topic to one fusion ECU. The paper notes that "for
// multiple communication partners on the same topic, multiple monitors have
// to be instantiated, and differentiated based on delivered DDS topic
// keys" — the KeyedRemoteMonitor does exactly that: one
// synchronization-based monitor per writer, created lazily on each writer's
// first sample.
//
// The front-left radar degrades mid-run (loses every third frame); only its
// monitor accumulates misses while the other three stay clean.
package main

import (
	"fmt"
	"sort"

	"chainmon"
)

func main() {
	k := chainmon.NewKernel()
	domain := chainmon.NewDomain(k, chainmon.NewRNG(11))
	clock := chainmon.ClockConfig{Epsilon: 50 * chainmon.Microsecond}
	fusionECU := domain.NewECU("fusion-ecu", 2, clock)

	const period = 50 * chainmon.Millisecond
	const frames = 100

	// Four corner radars on the same topic.
	positions := []string{"front-left", "front-right", "rear-left", "rear-right"}
	var radars []*chainmon.Device
	for _, pos := range positions {
		r := domain.NewDevice("radar-"+pos, "radar_tracks", period, clock)
		r.Payload = func(n uint64) (any, int) { return n, 256 }
		radars = append(radars, r)
	}
	// The front-left radar starts losing every third frame after a while.
	radars[0].Perturb = func(n uint64) (bool, chainmon.Duration) {
		return n >= 40 && n%3 == 0, 0
	}

	fusion := fusionECU.NewNode("track-fusion", 100)
	received := map[string]int{}
	sub := fusion.Subscribe("radar_tracks",
		func(*chainmon.Sample) chainmon.Duration { return 200 * chainmon.Microsecond },
		func(s *chainmon.Sample) { received[s.Writer]++ })

	lm := chainmon.NewLocalMonitor(fusionECU)
	km := chainmon.NewKeyedRemoteMonitor(sub, chainmon.SegmentConfig{
		Name: "radar-link", DMon: 10 * chainmon.Millisecond, Period: period,
		Constraint: chainmon.Constraint{M: 2, K: 10},
		Handler: func(ctx *chainmon.ExceptionContext) *chainmon.Recovery {
			// Radar tracks age quickly: recover with a coasted estimate.
			return &chainmon.Recovery{Data: "coasted", Size: 64}
		},
	}, chainmon.VariantMonitorThread, lm,
		func(writer string, m *chainmon.RemoteMonitor) {
			m.SetLastActivation(frames - 1)
			fmt.Printf("monitor instantiated for writer %s\n", writer)
		})

	for _, r := range radars {
		r.Start(0)
	}
	end := chainmon.Time(frames) * chainmon.Time(period)
	k.At(end, func() {
		for _, r := range radars {
			r.Stop()
		}
	})
	k.At(end.Add(chainmon.Second), km.Stop)
	k.Run()

	fmt.Println()
	writers := km.Writers()
	sort.Strings(writers)
	for _, w := range writers {
		m := km.Monitor(w)
		ok, rec, miss := m.Stats().Counts()
		fmt.Printf("%-38s ok=%-4d recovered=%-3d missed=%-3d window-misses=%d\n",
			w, ok, rec, miss, m.Counter().Misses())
	}
	fmt.Printf("\nfusion received %d track sets from %d radars (plus coasted recoveries)\n",
		total(received), len(received))
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
