// Command experiments regenerates every figure of the paper's evaluation
// and prints the corresponding tables (Tukey boxplot rows, comparison and
// schedulability tables). The default frame count matches the paper's
// ~4700 activations per segment.
//
// Usage:
//
//	experiments [-frames N] [-seed S] [-fig 3|6|9|10|11|12|budget|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"chainmon/internal/experiments"
	"chainmon/internal/stats"
)

func main() {
	frames := flag.Int("frames", 4700, "activations per segment for the perception runs")
	seed := flag.Int64("seed", 1, "simulation seed")
	fig := flag.String("fig", "all", "which figure to regenerate (3, 6, 9, 10, 11, 12, budget, ablations, all)")
	fig11n := flag.Int("fig11n", 2000, "activations for the wall-clock Fig. 11 run")
	workers := flag.Int("parallel", 0, "worker pool size for sharded runs (0: GOMAXPROCS, 1: serial)")
	dump := flag.String("dump", "", "also dump raw samples as CSV files into this directory")
	flag.Parse()

	w := os.Stdout
	want := func(name string) bool { return *fig == "all" || *fig == name }
	dumpSamples := func(samples map[string]*stats.Sample) {
		if *dump == "" {
			return
		}
		if err := experiments.DumpCSV(*dump, samples); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if want("9") || want("10") {
		r := experiments.RunFig9(*frames, *seed, *workers)
		if want("9") {
			r.Report(w)
		}
		if want("10") {
			r.ReportFig10(w)
		}
		dumpSamples(r.Samples())
	}
	if want("11") {
		r := experiments.RunFig11(*fig11n, 100*time.Microsecond)
		r.Report(w)
		dumpSamples(r.Samples())
	}
	if want("12") {
		r := experiments.RunFig12(800, *seed, []float64{0, 0.5, 0.9}, *workers)
		r.Report(w)
		dumpSamples(r.Samples())
	}
	if want("6") {
		rows := experiments.RunFig6(500, *seed, *workers)
		experiments.ReportFig6(w, rows)
	}
	if want("budget") {
		r := experiments.RunBudgeting(minInt(*frames, 1000), *seed)
		r.Report(w)
	}
	if want("3") {
		r := experiments.RunFig3(*seed)
		r.Report(w)
	}
	if want("ablations") {
		experiments.ReportEpsilonAblation(w, experiments.RunEpsilonAblation(500, *seed,
			[]time.Duration{0, 50 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond}, *workers))
		experiments.ReportDeadlineSweep(w, experiments.RunDeadlineSweep(minInt(*frames, 1000), *seed,
			[]time.Duration{60 * time.Millisecond, 80 * time.Millisecond, 100 * time.Millisecond,
				120 * time.Millisecond, 140 * time.Millisecond}, *workers))
		experiments.ReportOrderAblation(w, experiments.RunOrderAblation(minInt(*frames, 1000), *seed, *workers))
		experiments.ReportMigrationAblation(w, experiments.RunMigrationAblation(minInt(*frames, 1000), *seed, *workers))
	}
	if *fig != "all" && !isKnown(*fig) {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func isKnown(f string) bool {
	switch f {
	case "3", "6", "9", "10", "11", "12", "budget", "ablations":
		return true
	}
	return false
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
