// Command bench emits the repo's performance trajectory as machine-readable
// JSON (BENCH_parallel.json in CI). It covers the two axes of the parallel
// engine work:
//
//   - hot-path allocation cuts: kernel event scheduling with and without the
//     pooled freelist, measured via testing.Benchmark;
//   - parallel campaign throughput: the frozen 102-combo chaos matrix run
//     serially and through the sharded worker pool, with the merged summaries
//     byte-compared so the speedup number is only reported for identical
//     output;
//   - fleet sweep throughput: a 64-vehicle jittered fleet run serially and
//     through the pool, with the rendered fleet summary byte-compared the
//     same way.
//
// The speedup is only meaningful on a multi-core host; the JSON therefore
// records num_cpu and go_max_procs so a reader can tell a 1-CPU container
// result (speedup ≈ 1×) from a real parallel run.
//
// Usage:
//
//	bench [-workers N] [-out BENCH_parallel.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"chainmon/internal/faultinject"
	"chainmon/internal/fleet"
	"chainmon/internal/perception"
	"chainmon/internal/sim"
)

type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type sweepResult struct {
	Combos          int     `json:"combos"`
	Workers         int     `json:"workers"`
	SerialNs        int64   `json:"serial_ns"`
	ParallelNs      int64   `json:"parallel_ns"`
	Speedup         float64 `json:"speedup"`
	IdenticalOutput bool    `json:"identical_output"`
}

type fleetSweepResult struct {
	Vehicles        int     `json:"vehicles"`
	Frames          int     `json:"frames"`
	Workers         int     `json:"workers"`
	SerialNs        int64   `json:"serial_ns"`
	ParallelNs      int64   `json:"parallel_ns"`
	Speedup         float64 `json:"speedup"`
	IdenticalOutput bool    `json:"identical_output"`
}

type report struct {
	GoVersion  string           `json:"go_version"`
	NumCPU     int              `json:"num_cpu"`
	GoMaxProcs int              `json:"go_max_procs"`
	Benchmarks []benchRow       `json:"benchmarks"`
	Sweep      sweepResult      `json:"sweep"`
	FleetSweep fleetSweepResult `json:"fleet_sweep"`
}

func main() {
	workers := flag.Int("workers", 4, "worker pool size for the parallel sweep leg")
	out := flag.String("out", "BENCH_parallel.json", "output JSON path (- for stdout)")
	flag.Parse()

	rep := report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		rep.Benchmarks = append(rep.Benchmarks, benchRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-24s %10.1f ns/op  %3d allocs/op  %4d B/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp(), r.AllocedBytesPerOp())
	}

	// Hot-path allocation cuts: the same self-rescheduling tick, first
	// through the plain heap-allocating API, then through the freelist.
	run("EventSchedule", func(b *testing.B) {
		b.ReportAllocs()
		k := sim.NewKernel()
		n := 0
		var tick sim.EventFunc
		tick = func() {
			if n++; n < b.N {
				k.After(100, tick)
			}
		}
		b.ResetTimer()
		k.After(100, tick)
		k.Run()
	})
	run("EventSchedulePooled", func(b *testing.B) {
		b.ReportAllocs()
		k := sim.NewKernel()
		n := 0
		var tick sim.EventFunc
		tick = func() {
			if n++; n < b.N {
				k.AfterPooled(100, tick)
			}
		}
		b.ResetTimer()
		k.AfterPooled(100, tick)
		k.Run()
	})

	// Campaign throughput on the frozen 102-combo reference matrix.
	combos := faultinject.Matrix102()
	fmt.Fprintf(os.Stderr, "sweep: %d combos, serial vs %d workers (GOMAXPROCS=%d)\n",
		len(combos), *workers, runtime.GOMAXPROCS(0))

	timeSweep := func(w int) (time.Duration, string) {
		start := time.Now()
		items := faultinject.RunSweep(combos, w)
		elapsed := time.Since(start)
		for _, it := range items {
			if it.Err != nil {
				log.Fatalf("sweep %s: %v", it.Combo, it.Err)
			}
		}
		return elapsed, faultinject.MergedSummary(items)
	}
	// Warm up once so neither leg pays first-run costs, then measure.
	timeSweep(1)
	serialT, serialOut := timeSweep(1)
	parT, parOut := timeSweep(*workers)

	rep.Sweep = sweepResult{
		Combos:          len(combos),
		Workers:         *workers,
		SerialNs:        serialT.Nanoseconds(),
		ParallelNs:      parT.Nanoseconds(),
		Speedup:         float64(serialT.Nanoseconds()) / float64(parT.Nanoseconds()),
		IdenticalOutput: serialOut == parOut,
	}
	if !rep.Sweep.IdenticalOutput {
		log.Fatal("parallel sweep output differs from serial — determinism broken, refusing to report a speedup")
	}
	fmt.Fprintf(os.Stderr, "sweep: serial %v, parallel %v, speedup %.2fx, identical output\n",
		serialT, parT, rep.Sweep.Speedup)

	// Fleet sweep: the same serial-vs-parallel shape on the fleet layer —
	// N jittered vehicle sims sharded over the pool, with the rendered fleet
	// summary byte-compared so the speedup is only reported for
	// deterministic output.
	const fleetVehicles, fleetFrames = 64, 60
	fleetBase := perception.DefaultConfig()
	fleetBase.Frames = fleetFrames
	fleetCfg := fleet.Config{
		Size: fleetVehicles, Seed: 1, Jitter: fleet.Uniform(0.1), Base: fleetBase,
	}
	fmt.Fprintf(os.Stderr, "fleet sweep: %d vehicles × %d frames, serial vs %d workers\n",
		fleetVehicles, fleetFrames, *workers)
	timeFleet := func(w int) (time.Duration, string) {
		c := fleetCfg
		c.Workers = w
		start := time.Now()
		res, err := fleet.Run(c)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatalf("fleet sweep: %v", err)
		}
		if errs := res.Errs(); len(errs) > 0 {
			log.Fatalf("fleet sweep: %d vehicles failed: %+v", len(errs), errs)
		}
		var buf bytes.Buffer
		buf.WriteString(res.Summary())
		if err := res.WriteJSON(&buf); err != nil {
			log.Fatalf("fleet sweep: %v", err)
		}
		return elapsed, buf.String()
	}
	timeFleet(1)
	fleetSerialT, fleetSerialOut := timeFleet(1)
	fleetParT, fleetParOut := timeFleet(*workers)
	rep.FleetSweep = fleetSweepResult{
		Vehicles:        fleetVehicles,
		Frames:          fleetFrames,
		Workers:         *workers,
		SerialNs:        fleetSerialT.Nanoseconds(),
		ParallelNs:      fleetParT.Nanoseconds(),
		Speedup:         float64(fleetSerialT.Nanoseconds()) / float64(fleetParT.Nanoseconds()),
		IdenticalOutput: fleetSerialOut == fleetParOut,
	}
	if !rep.FleetSweep.IdenticalOutput {
		log.Fatal("parallel fleet output differs from serial — determinism broken, refusing to report a speedup")
	}
	fmt.Fprintf(os.Stderr, "fleet sweep: serial %v, parallel %v, speedup %.2fx, identical output\n",
		fleetSerialT, fleetParT, rep.FleetSweep.Speedup)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
