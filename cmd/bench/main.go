// Command bench emits the repo's performance trajectory as machine-readable
// JSON (BENCH_parallel.json in CI). It covers the two axes of the parallel
// engine work:
//
//   - hot-path allocation cuts: kernel event scheduling with and without the
//     pooled freelist, the overload queue-churn workload (work-item freelist
//     and pre-bound wakers), the deadline hot-swap cycle of the adaptive
//     budget loop (budget_swap), and the sweep-framework overhead per combo,
//     all measured via testing.Benchmark;
//   - parallel campaign throughput: the frozen 102-combo chaos matrix (or
//     the 10k nightly matrix with -matrix 10k) run serially and through the
//     sharded worker pool, with the merged summaries byte-compared so the
//     speedup number is only reported for identical output, plus the
//     measured heap allocations per combo;
//   - fleet sweep throughput: a 64-vehicle jittered fleet run serially and
//     through the pool, with the rendered fleet summary byte-compared the
//     same way.
//
// The speedup is only meaningful on a multi-core host; the JSON therefore
// records num_cpu and go_max_procs so a reader can tell a 1-CPU container
// result (speedup ≈ 1×) from a real parallel run.
//
// With -baseline FILE the run compares itself against a previous report and
// exits non-zero on regression: any allocs/op increase on a named benchmark
// fails unconditionally (allocation counts are machine-independent), and
// ns/op regressions beyond -gate-ns fail when the fraction is positive
// (wall-clock gating only makes sense against a baseline from the same
// machine class, e.g. night-over-night CI artifacts — leave it 0 across
// machines).
//
// Usage:
//
//	bench [-workers N] [-out BENCH_parallel.json] [-quick] [-matrix 102|10k]
//	      [-baseline FILE] [-gate-ns FRAC]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"chainmon/internal/faultinject"
	"chainmon/internal/fleet"
	"chainmon/internal/parallel"
	"chainmon/internal/perception"
	rt "chainmon/internal/runtime"
	"chainmon/internal/sim"
)

// schemaVersion identifies the report layout; bump it when fields change
// incompatibly so downstream consumers (the CI gate) can refuse mismatches.
const schemaVersion = 2

type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type sweepResult struct {
	Matrix          string  `json:"matrix"`
	Combos          int     `json:"combos"`
	Workers         int     `json:"workers"`
	SerialNs        int64   `json:"serial_ns"`
	ParallelNs      int64   `json:"parallel_ns"`
	Speedup         float64 `json:"speedup"`
	IdenticalOutput bool    `json:"identical_output"`
	// AllocsPerCombo is the measured heap-allocation count per combo of the
	// serial leg (runtime.MemStats.Mallocs delta / combos). Each combo still
	// deliberately builds its own simulation from the seed — determinism —
	// so this is O(build) per combo; the gateable property is that it does
	// not grow with the matrix size (the sweep framework itself is O(1), see
	// the sweep_framework benchmark row).
	AllocsPerCombo float64 `json:"sweep_allocs_per_combo"`
}

type fleetSweepResult struct {
	Vehicles        int     `json:"vehicles"`
	Frames          int     `json:"frames"`
	Workers         int     `json:"workers"`
	SerialNs        int64   `json:"serial_ns"`
	ParallelNs      int64   `json:"parallel_ns"`
	Speedup         float64 `json:"speedup"`
	IdenticalOutput bool    `json:"identical_output"`
}

type report struct {
	SchemaVersion int              `json:"schema_version"`
	GoVersion     string           `json:"go_version"`
	NumCPU        int              `json:"num_cpu"`
	GoMaxProcs    int              `json:"go_max_procs"`
	Benchmarks    []benchRow       `json:"benchmarks"`
	Sweep         sweepResult      `json:"sweep,omitempty"`
	FleetSweep    fleetSweepResult `json:"fleet_sweep,omitempty"`
}

func main() {
	workers := flag.Int("workers", 4, "worker pool size for the parallel sweep leg")
	out := flag.String("out", "BENCH_parallel.json", "output JSON path (- for stdout)")
	quick := flag.Bool("quick", false, "benchmark rows only: skip the sweep and fleet legs")
	matrix := flag.String("matrix", "102", "sweep matrix: 102 (frozen reference) or 10k (nightly)")
	baseline := flag.String("baseline", "", "previous report JSON to gate against (empty: no gate)")
	gateNs := flag.Float64("gate-ns", 0, "fail when ns/op regresses beyond this fraction (0: allocs-only gate)")
	flag.Parse()

	rep := report{
		SchemaVersion: schemaVersion,
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
	}

	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		rep.Benchmarks = append(rep.Benchmarks, benchRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-24s %10.1f ns/op  %3d allocs/op  %4d B/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp(), r.AllocedBytesPerOp())
	}

	// Hot-path allocation cuts: the same self-rescheduling tick, first
	// through the plain heap-allocating API, then through the freelist.
	run("EventSchedule", func(b *testing.B) {
		b.ReportAllocs()
		k := sim.NewKernel()
		n := 0
		var tick sim.EventFunc
		tick = func() {
			if n++; n < b.N {
				k.After(100, tick)
			}
		}
		b.ResetTimer()
		k.After(100, tick)
		k.Run()
	})
	run("EventSchedulePooled", func(b *testing.B) {
		b.ReportAllocs()
		k := sim.NewKernel()
		n := 0
		var tick sim.EventFunc
		tick = func() {
			if n++; n < b.N {
				k.AfterPooled(100, tick)
			}
		}
		b.ResetTimer()
		k.AfterPooled(100, tick)
		k.Run()
	})
	// queue_churn is the overload-campaign event pattern (periodic chain work
	// plus a near-saturating service on a 2-core processor): enqueue, wakeup,
	// dispatch, preemption and completion per kernel step. The zero-alloc
	// gate in internal/sim pins this workload at 0 allocs/op.
	run("queue_churn", func(b *testing.B) {
		b.ReportAllocs()
		k := sim.NewKernel()
		rng := sim.NewRNG(1)
		proc := sim.NewProcessor(k, rng, "ecu", 2)
		work := proc.NewThread("chain", 100)
		svc := proc.NewThread("svc", 50)
		proc.PeriodicLoad(work, "frame", 0, 100*sim.Millisecond,
			sim.NormalDist{Mean: 8 * sim.Millisecond, Stddev: sim.Millisecond, Min: sim.Millisecond})
		proc.PeriodicLoad(svc, "busy", 0, sim.Millisecond,
			sim.UniformDist{Lo: 600 * sim.Microsecond, Hi: 900 * sim.Microsecond})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !k.Step() {
				b.Fatal("queue drained")
			}
		}
	})
	// budget_swap is the deadline hot-swap path of the adaptive budget loop:
	// one op arms 64 pending timeouts, shrinks the segment deadline with
	// retime (64 lazy heap re-arms), grows it back, then resolves the batch
	// and prunes the stale heap entries. TestSwapAllocFree in
	// internal/runtime pins this cycle at 0 allocs/op; the row tracks its
	// wall cost alongside the other hot-path cuts.
	run("budget_swap", func(b *testing.B) {
		b.ReportAllocs()
		c := rt.NewCore()
		s := c.AddSegment("s", 10*time.Millisecond, &rt.SliceRing{}, &rt.SliceRing{}, rt.SegmentHooks{})
		now := rt.Time(0)
		act := uint64(0)
		cycle := func() {
			for i := 0; i < 64; i++ {
				act++
				s.StartRing().Post(rt.Event{Act: act, TS: now})
			}
			c.Scan(now)
			c.SetDeadline(s, 2*time.Millisecond, now, true)
			c.SetDeadline(s, 10*time.Millisecond, now, true)
			for a := act - 63; a <= act; a++ {
				s.EndRing().Post(rt.Event{Act: a, TS: now.Add(time.Millisecond)})
			}
			now = now.Add(time.Millisecond)
			c.Scan(now)
			now = now.Add(30 * time.Millisecond)
			c.Scan(now)
		}
		cycle() // warm the timeout pool before the timer starts
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cycle()
		}
	})
	// sweep_framework isolates the sweep machinery from the combos: one op is
	// an arena-sharded MapSliceArena walk over the full 102-combo list with a
	// no-op worker, so allocs/op is the framework's total allocation budget
	// for an entire sweep (results slice + one arena) — a fraction of an
	// allocation per combo, independent of matrix size.
	run("sweep_framework", func(b *testing.B) {
		b.ReportAllocs()
		combos := faultinject.Matrix102()
		sink := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got := parallel.MapSliceArena(1, combos, faultinject.NewSweepArena,
				func(a *faultinject.SweepArena, shard int, c faultinject.Combo) int {
					return len(c.Campaign.Name)
				})
			sink += got[0]
		}
		_ = sink
	})

	defer func() {
		enc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		enc = append(enc, '\n')
		if *out == "-" {
			os.Stdout.Write(enc)
		} else {
			if err := os.WriteFile(*out, enc, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		}
		if *baseline != "" {
			gate(rep, *baseline, *gateNs)
		}
	}()

	if *quick {
		return
	}

	// Campaign throughput on the selected matrix.
	var combos []faultinject.Combo
	switch *matrix {
	case "102":
		combos = faultinject.Matrix102()
	case "10k":
		combos = faultinject.Matrix10K()
	default:
		log.Fatalf("unknown -matrix %q (want 102 or 10k)", *matrix)
	}
	fmt.Fprintf(os.Stderr, "sweep: matrix %s, %d combos, serial vs %d workers (GOMAXPROCS=%d)\n",
		*matrix, len(combos), *workers, runtime.GOMAXPROCS(0))

	timeSweep := func(w int) (time.Duration, string) {
		start := time.Now()
		items := faultinject.RunSweep(combos, w)
		elapsed := time.Since(start)
		for _, it := range items {
			if it.Err != nil {
				log.Fatalf("sweep %s: %v", it.Combo, it.Err)
			}
		}
		return elapsed, faultinject.MergedSummary(items)
	}
	// Warm up once so neither leg pays first-run costs, then measure. The
	// serial leg doubles as the allocation measurement: Mallocs delta over
	// the run divided by the combo count.
	timeSweep(1)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	serialT, serialOut := timeSweep(1)
	runtime.ReadMemStats(&ms1)
	parT, parOut := timeSweep(*workers)

	rep.Sweep = sweepResult{
		Matrix:          *matrix,
		Combos:          len(combos),
		Workers:         *workers,
		SerialNs:        serialT.Nanoseconds(),
		ParallelNs:      parT.Nanoseconds(),
		Speedup:         float64(serialT.Nanoseconds()) / float64(parT.Nanoseconds()),
		IdenticalOutput: serialOut == parOut,
		AllocsPerCombo:  float64(ms1.Mallocs-ms0.Mallocs) / float64(len(combos)),
	}
	if !rep.Sweep.IdenticalOutput {
		log.Fatal("parallel sweep output differs from serial — determinism broken, refusing to report a speedup")
	}
	fmt.Fprintf(os.Stderr, "sweep: serial %v, parallel %v, speedup %.2fx, %.0f allocs/combo, identical output\n",
		serialT, parT, rep.Sweep.Speedup, rep.Sweep.AllocsPerCombo)

	// Fleet sweep: the same serial-vs-parallel shape on the fleet layer —
	// N jittered vehicle sims sharded over the pool, with the rendered fleet
	// summary byte-compared so the speedup is only reported for
	// deterministic output.
	const fleetVehicles, fleetFrames = 64, 60
	fleetBase := perception.DefaultConfig()
	fleetBase.Frames = fleetFrames
	fleetCfg := fleet.Config{
		Size: fleetVehicles, Seed: 1, Jitter: fleet.Uniform(0.1), Base: fleetBase,
	}
	fmt.Fprintf(os.Stderr, "fleet sweep: %d vehicles × %d frames, serial vs %d workers\n",
		fleetVehicles, fleetFrames, *workers)
	timeFleet := func(w int) (time.Duration, string) {
		c := fleetCfg
		c.Workers = w
		start := time.Now()
		res, err := fleet.Run(c)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatalf("fleet sweep: %v", err)
		}
		if errs := res.Errs(); len(errs) > 0 {
			log.Fatalf("fleet sweep: %d vehicles failed: %+v", len(errs), errs)
		}
		var buf bytes.Buffer
		buf.WriteString(res.Summary())
		if err := res.WriteJSON(&buf); err != nil {
			log.Fatalf("fleet sweep: %v", err)
		}
		return elapsed, buf.String()
	}
	timeFleet(1)
	fleetSerialT, fleetSerialOut := timeFleet(1)
	fleetParT, fleetParOut := timeFleet(*workers)
	rep.FleetSweep = fleetSweepResult{
		Vehicles:        fleetVehicles,
		Frames:          fleetFrames,
		Workers:         *workers,
		SerialNs:        fleetSerialT.Nanoseconds(),
		ParallelNs:      fleetParT.Nanoseconds(),
		Speedup:         float64(fleetSerialT.Nanoseconds()) / float64(fleetParT.Nanoseconds()),
		IdenticalOutput: fleetSerialOut == fleetParOut,
	}
	if !rep.FleetSweep.IdenticalOutput {
		log.Fatal("parallel fleet output differs from serial — determinism broken, refusing to report a speedup")
	}
	fmt.Fprintf(os.Stderr, "fleet sweep: serial %v, parallel %v, speedup %.2fx, identical output\n",
		fleetSerialT, fleetParT, rep.FleetSweep.Speedup)
}

// gate compares the fresh report against a baseline file and terminates the
// process non-zero on regression. Allocation counts gate strictly — they are
// deterministic and machine-independent. Wall-clock gates only when gateNs
// is positive, at that relative tolerance.
func gate(rep report, baselinePath string, gateNs float64) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		log.Fatalf("gate: read baseline: %v", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("gate: parse baseline: %v", err)
	}
	byName := make(map[string]benchRow, len(base.Benchmarks))
	for _, row := range base.Benchmarks {
		byName[row.Name] = row
	}
	failed := false
	for _, row := range rep.Benchmarks {
		prev, ok := byName[row.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "gate: %-24s no baseline row, skipping\n", row.Name)
			continue
		}
		if row.AllocsPerOp > prev.AllocsPerOp {
			failed = true
			fmt.Fprintf(os.Stderr, "gate: %-24s FAIL allocs/op %d -> %d\n",
				row.Name, prev.AllocsPerOp, row.AllocsPerOp)
			continue
		}
		if gateNs > 0 && prev.NsPerOp > 0 && row.NsPerOp > prev.NsPerOp*(1+gateNs) {
			failed = true
			fmt.Fprintf(os.Stderr, "gate: %-24s FAIL ns/op %.1f -> %.1f (>%.0f%%)\n",
				row.Name, prev.NsPerOp, row.NsPerOp, gateNs*100)
			continue
		}
		fmt.Fprintf(os.Stderr, "gate: %-24s ok (allocs %d<=%d, %.1f ns/op vs %.1f)\n",
			row.Name, row.AllocsPerOp, prev.AllocsPerOp, row.NsPerOp, prev.NsPerOp)
	}
	if failed {
		log.Fatal("gate: benchmark regression against baseline")
	}
	fmt.Fprintln(os.Stderr, "gate: no regression against baseline")
}
