// Command bench emits the repo's performance trajectory as machine-readable
// JSON (BENCH_parallel.json in CI). It covers the two axes of the parallel
// engine work:
//
//   - hot-path allocation cuts: kernel event scheduling with and without the
//     pooled freelist, measured via testing.Benchmark;
//   - parallel campaign throughput: the frozen 102-combo chaos matrix run
//     serially and through the sharded worker pool, with the merged summaries
//     byte-compared so the speedup number is only reported for identical
//     output.
//
// The speedup is only meaningful on a multi-core host; the JSON therefore
// records num_cpu and go_max_procs so a reader can tell a 1-CPU container
// result (speedup ≈ 1×) from a real parallel run.
//
// Usage:
//
//	bench [-workers N] [-out BENCH_parallel.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"chainmon/internal/faultinject"
	"chainmon/internal/sim"
)

type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type sweepResult struct {
	Combos          int     `json:"combos"`
	Workers         int     `json:"workers"`
	SerialNs        int64   `json:"serial_ns"`
	ParallelNs      int64   `json:"parallel_ns"`
	Speedup         float64 `json:"speedup"`
	IdenticalOutput bool    `json:"identical_output"`
}

type report struct {
	GoVersion  string      `json:"go_version"`
	NumCPU     int         `json:"num_cpu"`
	GoMaxProcs int         `json:"go_max_procs"`
	Benchmarks []benchRow  `json:"benchmarks"`
	Sweep      sweepResult `json:"sweep"`
}

func main() {
	workers := flag.Int("workers", 4, "worker pool size for the parallel sweep leg")
	out := flag.String("out", "BENCH_parallel.json", "output JSON path (- for stdout)")
	flag.Parse()

	rep := report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		rep.Benchmarks = append(rep.Benchmarks, benchRow{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-24s %10.1f ns/op  %3d allocs/op  %4d B/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp(), r.AllocedBytesPerOp())
	}

	// Hot-path allocation cuts: the same self-rescheduling tick, first
	// through the plain heap-allocating API, then through the freelist.
	run("EventSchedule", func(b *testing.B) {
		b.ReportAllocs()
		k := sim.NewKernel()
		n := 0
		var tick sim.EventFunc
		tick = func() {
			if n++; n < b.N {
				k.After(100, tick)
			}
		}
		b.ResetTimer()
		k.After(100, tick)
		k.Run()
	})
	run("EventSchedulePooled", func(b *testing.B) {
		b.ReportAllocs()
		k := sim.NewKernel()
		n := 0
		var tick sim.EventFunc
		tick = func() {
			if n++; n < b.N {
				k.AfterPooled(100, tick)
			}
		}
		b.ResetTimer()
		k.AfterPooled(100, tick)
		k.Run()
	})

	// Campaign throughput on the frozen 102-combo reference matrix.
	combos := faultinject.Matrix102()
	fmt.Fprintf(os.Stderr, "sweep: %d combos, serial vs %d workers (GOMAXPROCS=%d)\n",
		len(combos), *workers, runtime.GOMAXPROCS(0))

	timeSweep := func(w int) (time.Duration, string) {
		start := time.Now()
		items := faultinject.RunSweep(combos, w)
		elapsed := time.Since(start)
		for _, it := range items {
			if it.Err != nil {
				log.Fatalf("sweep %s: %v", it.Combo, it.Err)
			}
		}
		return elapsed, faultinject.MergedSummary(items)
	}
	// Warm up once so neither leg pays first-run costs, then measure.
	timeSweep(1)
	serialT, serialOut := timeSweep(1)
	parT, parOut := timeSweep(*workers)

	rep.Sweep = sweepResult{
		Combos:          len(combos),
		Workers:         *workers,
		SerialNs:        serialT.Nanoseconds(),
		ParallelNs:      parT.Nanoseconds(),
		Speedup:         float64(serialT.Nanoseconds()) / float64(parT.Nanoseconds()),
		IdenticalOutput: serialOut == parOut,
	}
	if !rep.Sweep.IdenticalOutput {
		log.Fatal("parallel sweep output differs from serial — determinism broken, refusing to report a speedup")
	}
	fmt.Fprintf(os.Stderr, "sweep: serial %v, parallel %v, speedup %.2fx, identical output\n",
		serialT, parT, rep.Sweep.Speedup)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
