// Command chainmon runs the monitored Autoware-style perception scenario
// and prints per-segment statistics, chain accounting and monitor
// overheads. It is the quickest way to see the monitoring system working
// end to end.
//
// Usage:
//
//	chainmon [-frames N] [-seed S] [-deadline D] [-loss P] [-full]
//	         [-recover] [-trace out.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"chainmon/internal/monitor"
	"chainmon/internal/perception"
	"chainmon/internal/scenario"
	"chainmon/internal/sim"
)

func main() {
	frames := flag.Int("frames", 600, "number of lidar frames to simulate")
	seed := flag.Int64("seed", 1, "simulation seed")
	deadline := flag.Duration("deadline", 100*time.Millisecond, "local segment deadline d_mon")
	loss := flag.Float64("loss", 0, "inter-ECU message loss probability")
	full := flag.Bool("full", false, "monitor the full chains (remote + fusion segments)")
	withRecovery := flag.Bool("recover", false, "install recovery handlers on the lidar remote segments")
	traceOut := flag.String("trace", "", "also record an unmonitored trace to this JSON file")
	configPath := flag.String("config", "", "JSON scenario file (flags are applied on top)")
	flag.Parse()

	cfg := perception.DefaultConfig()
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			log.Fatalf("opening scenario: %v", err)
		}
		cfg, err = scenario.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	flag.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "frames":
			cfg.Frames = *frames
		case "seed":
			cfg.Seed = *seed
		case "deadline":
			cfg.LocalDeadline = sim.Duration(*deadline)
		case "loss":
			cfg.Network.LossProb = *loss
		case "full":
			cfg.FullChain = *full
		}
	})
	if *configPath == "" {
		cfg.Frames = *frames
		cfg.Seed = *seed
		cfg.LocalDeadline = sim.Duration(*deadline)
		cfg.Network.LossProb = *loss
		cfg.FullChain = *full
	}
	if *withRecovery {
		recover := func(ctx *monitor.ExceptionContext) *monitor.Recovery {
			// Hold-over recovery: repeat the last frame's shape.
			return &monitor.Recovery{
				Data: &perception.FrameData{Points: 11000, FrontOnly: true},
				Size: 16 * 11000,
			}
		}
		cfg.Handlers = map[string]monitor.Handler{
			perception.SegFrontRemote: recover,
			perception.SegRearRemote:  recover,
		}
	}

	s := perception.Build(cfg)
	var sup *monitor.Supervisor
	if cfg.FullChain {
		// System-level entity: derive an operating mode from the chain
		// windows (degrade on a violated window, safe-stop if it persists).
		sup = monitor.NewSupervisor(s.K, 5)
		sup.Watch(s.ChainFront)
		sup.Watch(s.ChainRear)
	}
	end := s.Run()

	fmt.Printf("simulated %v of operation (%d frames at %v period)\n\n",
		sim.Duration(end), cfg.Frames, cfg.Period)

	fmt.Println("evaluation segments on ECU2:")
	for _, seg := range []*monitor.LocalSegment{s.SegObjects, s.SegGround} {
		st := seg.Stats()
		fmt.Printf("  %s\n", st.Summary())
		fmt.Printf("    %s\n", st.Latencies().Tukey().DurationRow("latency"))
		if st.Exceptions() > 0 {
			fmt.Printf("    %s\n", st.DetectionLatencies().Tukey().DurationRow("detection"))
		}
	}

	fmt.Println("\nmonitor overheads (simulated):")
	for _, row := range s.MonECU2.Overheads().Rows() {
		fmt.Printf("  %s\n", row)
	}

	if cfg.FullChain {
		fmt.Println()
		fmt.Print(s.ChainFront.Summary())
		fmt.Print(s.ChainRear.Summary())
		fmt.Printf("\nsupervisor final mode: %v\n", sup.Mode())
		for _, ch := range sup.Changes() {
			fmt.Printf("  %v  %v → %v (%s: %s)\n", ch.At, ch.From, ch.To, ch.Chain, ch.Reason)
		}
	}

	if *traceOut != "" {
		writeTrace(*traceOut, cfg)
	}
}

// writeTrace records an unmonitored run of the same scenario and writes the
// trace for cmd/budgetsolve.
func writeTrace(path string, cfg perception.Config) {
	cfg.Monitored = false
	cfg.FullChain = false
	cfg.Handlers = nil
	cfg.Record = true
	s := perception.Build(cfg)
	s.Run()
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("creating trace file: %v", err)
	}
	defer f.Close()
	if err := s.Recorder.Trace().WriteJSON(f); err != nil {
		log.Fatalf("writing trace: %v", err)
	}
	fmt.Printf("\nunmonitored trace written to %s\n", path)
}
