// Command chainmon runs the monitored Autoware-style perception scenario
// and prints per-segment statistics, chain accounting and monitor
// overheads. It is the quickest way to see the monitoring system working
// end to end.
//
// Usage:
//
//	chainmon [-frames N] [-seed S] [-deadline D] [-loss P] [-full]
//	         [-recover] [-trace out.json] [-faults campaign.json]
//	         [-seeds N] [-parallel W]
//	         [-telemetry-trace out.json] [-metrics-out metrics.prom]
//	         [-telemetry-csv events.csv] [-metrics-addr :9090]
//	chainmon -realtime [-frames N] [-seed S] [-metrics-addr :9090]
//	         [-metrics-out metrics.prom]
//
// With -realtime the monitor core runs on the wall clock instead of the
// simulation: a real producer goroutine, real deadlines, and /metrics
// served live *during* the run (the simulation mode serves metrics only
// after the run finished).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"chainmon/internal/faultinject"
	"chainmon/internal/monitor"
	"chainmon/internal/parallel"
	"chainmon/internal/perception"
	"chainmon/internal/realtime"
	"chainmon/internal/scenario"
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
)

func main() {
	frames := flag.Int("frames", 600, "number of lidar frames to simulate")
	seed := flag.Int64("seed", 1, "simulation seed")
	deadline := flag.Duration("deadline", 100*time.Millisecond, "local segment deadline d_mon")
	loss := flag.Float64("loss", 0, "inter-ECU message loss probability")
	full := flag.Bool("full", false, "monitor the full chains (remote + fusion segments)")
	withRecovery := flag.Bool("recover", false, "install recovery handlers on the lidar remote segments")
	traceOut := flag.String("trace", "", "also record an unmonitored trace to this JSON file")
	configPath := flag.String("config", "", "JSON scenario file (flags are applied on top)")
	faultsPath := flag.String("faults", "", "JSON fault-campaign file injected into the run (cross-checked by the ground-truth oracle with -full)")
	seeds := flag.Int("seeds", 1, "run the scenario at N consecutive seeds starting at -seed; reports are merged in seed order")
	workers := flag.Int("parallel", 0, "worker pool size for -seeds runs (0: GOMAXPROCS, 1: serial)")
	telTrace := flag.String("telemetry-trace", "", "write the monitor's own flight-recorder trace (Chrome trace-event JSON, open in Perfetto)")
	metricsOut := flag.String("metrics-out", "", "write the monitor's metrics as Prometheus text to this file after the run")
	telCSV := flag.String("telemetry-csv", "", "write the flight-recorder events as CSV to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics on this address after the run (blocks; ctrl-C to exit). With -realtime: serve live during the run")
	rtMode := flag.Bool("realtime", false, "run the monitor core on the wall clock (real goroutines and deadlines) instead of the simulation")
	flag.Parse()

	if *rtMode {
		// A wall-clock run has no seeds to sweep, no faults to inject and
		// no virtual network: every simulation-only flag is a user error,
		// rejected loudly instead of silently ignored.
		rcfg := realtime.DefaultConfig()
		var bad []string
		flag.Visit(func(fl *flag.Flag) {
			switch fl.Name {
			case "frames":
				rcfg.Frames = *frames
			case "seed":
				rcfg.Seed = *seed
			case "realtime", "metrics-addr", "metrics-out":
			default:
				bad = append(bad, "-"+fl.Name)
			}
		})
		if len(bad) > 0 {
			log.Fatalf("-realtime is a wall-clock run; it cannot combine with the simulation-only flags %s", strings.Join(bad, ", "))
		}
		runRealtime(rcfg, *metricsAddr, *metricsOut)
		return
	}

	cfg := perception.DefaultConfig()
	var camp faultinject.Campaign
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			log.Fatalf("opening scenario: %v", err)
		}
		cfg, camp, err = scenario.LoadFull(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	if *faultsPath != "" {
		f, err := os.Open(*faultsPath)
		if err != nil {
			log.Fatalf("opening fault campaign: %v", err)
		}
		fc, err := faultinject.LoadCampaign(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		// A -faults campaign rides on top of any scenario-embedded faults.
		camp.Name = fc.Name
		camp.Faults = append(camp.Faults, fc.Faults...)
	}
	flag.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "frames":
			cfg.Frames = *frames
		case "seed":
			cfg.Seed = *seed
		case "deadline":
			cfg.LocalDeadline = sim.Duration(*deadline)
		case "loss":
			cfg.Network.LossProb = *loss
		case "full":
			cfg.FullChain = *full
		}
	})
	if *configPath == "" {
		cfg.Frames = *frames
		cfg.Seed = *seed
		cfg.LocalDeadline = sim.Duration(*deadline)
		cfg.Network.LossProb = *loss
		cfg.FullChain = *full
	}
	if *withRecovery {
		recover := func(ctx *monitor.ExceptionContext) *monitor.Recovery {
			// Hold-over recovery: repeat the last frame's shape.
			return &monitor.Recovery{
				Data: &perception.FrameData{Points: 11000, FrontOnly: true},
				Size: 16 * 11000,
			}
		}
		cfg.Handlers = map[string]monitor.Handler{
			perception.SegFrontRemote: recover,
			perception.SegRearRemote:  recover,
		}
	}

	wantTelemetry := *telTrace != "" || *metricsOut != "" || *telCSV != "" || *metricsAddr != ""

	if *seeds > 1 {
		// Multi-seed sweep: each seed is an independent simulation sharded
		// over the worker pool; the merged output is ordered by seed, so a
		// parallel sweep prints exactly what the serial one would.
		if wantTelemetry || *traceOut != "" {
			log.Fatal("-telemetry-*/-metrics-*/-trace apply to a single run; drop them or use -seeds 1")
		}
		type outcome struct {
			out   []byte
			sound bool
		}
		results := parallel.Map(*workers, *seeds, func(shard int) outcome {
			c := cfg
			c.Seed = cfg.Seed + int64(shard)
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "### seed %d\n", c.Seed)
			_, sound := runOne(c, camp, false, &buf)
			return outcome{buf.Bytes(), sound}
		})
		allSound := true
		for _, r := range results {
			os.Stdout.Write(r.out)
			allSound = allSound && r.sound
		}
		if !allSound {
			os.Exit(1)
		}
		return
	}

	sink, sound := runOne(cfg, camp, wantTelemetry, os.Stdout)
	if !sound {
		os.Exit(1)
	}

	if *traceOut != "" {
		writeTrace(*traceOut, cfg)
	}

	if sink != nil {
		writeTelemetry(sink, *telTrace, *metricsOut, *telCSV)
		if *metricsAddr != "" {
			fmt.Printf("serving metrics on http://%s/metrics\n", *metricsAddr)
			http.Handle("/metrics", sink.Handler())
			log.Fatal(http.ListenAndServe(*metricsAddr, nil))
		}
	}
}

// runOne builds the system for one configuration, runs it and writes the
// full report to w. attachTel wires a telemetry sink (single-run only). The
// returned flag is false when a fault-campaign oracle cross-check failed.
func runOne(cfg perception.Config, camp faultinject.Campaign, attachTel bool, w io.Writer) (*telemetry.Sink, bool) {
	s := perception.Build(cfg)
	var sink *telemetry.Sink
	if attachTel {
		sink = telemetry.NewSink(telemetry.DefaultTrackCap)
		perception.AttachTelemetry(s, sink)
	}
	var sup *monitor.Supervisor
	if cfg.FullChain {
		// System-level entity: derive an operating mode from the chain
		// windows (degrade on a violated window, safe-stop if it persists).
		sup = monitor.NewSupervisor(s.K, 5)
		sup.Watch(s.ChainFront)
		sup.Watch(s.ChainRear)
		sup.AttachTelemetry(sink)
	}
	var oracle *faultinject.Oracle
	if len(camp.Faults) > 0 {
		if cfg.FullChain {
			// Wire the ground-truth oracle before the run so its raw hooks
			// observe every event; cross-check after the kernel ran dry.
			oracle = faultinject.ForPerception(s, camp)
		}
		if err := faultinject.NewInjector(sim.NewRNG(cfg.Seed)).Apply(camp, faultinject.TargetsOf(s)); err != nil {
			log.Fatalf("applying fault campaign: %v", err)
		}
		fmt.Fprintf(w, "fault campaign %q armed: %d faults\n", camp.Name, len(camp.Faults))
	}
	end := s.Run()

	fmt.Fprintf(w, "simulated %v of operation (%d frames at %v period)\n\n",
		sim.Duration(end), cfg.Frames, cfg.Period)

	fmt.Fprintln(w, "evaluation segments on ECU2:")
	for _, seg := range []*monitor.LocalSegment{s.SegObjects, s.SegGround} {
		st := seg.Stats()
		fmt.Fprintf(w, "  %s\n", st.Summary())
		fmt.Fprintf(w, "    %s\n", st.Latencies().Tukey().DurationRow("latency"))
		if st.Exceptions() > 0 {
			fmt.Fprintf(w, "    %s\n", st.DetectionLatencies().Tukey().DurationRow("detection"))
		}
	}

	fmt.Fprintln(w, "\nmonitor overheads (simulated):")
	for _, row := range s.MonECU2.Overheads().Rows() {
		fmt.Fprintf(w, "  %s\n", row)
	}

	if cfg.FullChain {
		fmt.Fprintln(w)
		fmt.Fprint(w, s.ChainFront.Summary())
		fmt.Fprint(w, s.ChainRear.Summary())
		fmt.Fprintf(w, "\nsupervisor final mode: %v\n", sup.Mode())
		for _, ch := range sup.Changes() {
			fmt.Fprintf(w, "  %v  %v → %v (%s: %s)\n", ch.At, ch.From, ch.To, ch.Chain, ch.Reason)
		}
	}

	sound := true
	if oracle != nil {
		rep := oracle.Check()
		fmt.Fprintln(w, "\nground-truth oracle cross-check:")
		for _, sr := range rep.Segments {
			fmt.Fprintf(w, "  %s\n", sr)
		}
		if rep.Ok() {
			fmt.Fprintln(w, "  verdicts sound: no false negatives, exceptions within the ε-band")
		} else {
			for _, v := range rep.Violations {
				fmt.Fprintf(w, "  VIOLATION %s\n", v)
			}
			sound = false
		}
	}
	return sink, sound
}

// writeTelemetry dumps the sink to the requested files; an empty path skips
// that exporter.
func writeTelemetry(sink *telemetry.Sink, tracePath, metricsPath, csvPath string) {
	write := func(path, what string, fn func(w io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("creating %s file: %v", what, err)
		}
		if err := fn(f); err != nil {
			f.Close()
			log.Fatalf("writing %s: %v", what, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("closing %s file: %v", what, err)
		}
		fmt.Printf("%s written to %s\n", what, path)
	}
	write(tracePath, "telemetry trace", sink.WritePerfetto)
	write(metricsPath, "metrics", sink.WriteMetrics)
	write(csvPath, "telemetry CSV", sink.WriteEventsCSV)
}

// writeTrace records an unmonitored run of the same scenario and writes the
// trace for cmd/budgetsolve.
func writeTrace(path string, cfg perception.Config) {
	cfg.Monitored = false
	cfg.FullChain = false
	cfg.Handlers = nil
	cfg.Record = true
	s := perception.Build(cfg)
	s.Run()
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("creating trace file: %v", err)
	}
	defer f.Close()
	if err := s.Recorder.Trace().WriteJSON(f); err != nil {
		log.Fatalf("writing trace: %v", err)
	}
	fmt.Printf("\nunmonitored trace written to %s\n", path)
}

// runRealtime executes the wall-clock scenario. Unlike the simulation path,
// the metrics endpoint is bound *before* the run starts and serves the live
// registry while frames are still in flight; the process exits once the run
// and the final exports are done.
func runRealtime(cfg realtime.Config, metricsAddr, metricsOut string) {
	reg := telemetry.NewRegistry()
	sink := &telemetry.Sink{Reg: reg}

	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			log.Fatalf("binding metrics listener: %v", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", sink.Handler())
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				log.Printf("metrics server stopped: %v", err)
			}
		}()
		fmt.Printf("serving live metrics on http://%s/metrics\n", ln.Addr())
	}

	res, err := realtime.Run(cfg, reg)
	if err != nil {
		log.Fatalf("wall-clock run failed: %v", err)
	}
	res.Summary(os.Stdout)
	writeTelemetry(sink, "", metricsOut, "")
}
