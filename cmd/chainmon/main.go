// Command chainmon runs the monitored Autoware-style perception scenario
// and prints per-segment statistics, chain accounting and monitor
// overheads. It is the quickest way to see the monitoring system working
// end to end.
//
// Usage:
//
//	chainmon [-frames N] [-seed S] [-deadline D] [-loss P] [-full]
//	         [-recover] [-trace out.json] [-faults campaign.json]
//	         [-seeds N] [-parallel W]
//	         [-telemetry-trace out.json] [-metrics-out metrics.prom]
//	         [-telemetry-csv events.csv] [-metrics-addr :9090]
//	         [-trace-stream events.chmtrc] [-trace-rotate BYTES]
//	         [-adaptive [-adapt-interval D] [-adapt-guard F]]
//	chainmon -realtime [-frames N] [-seed S] [-metrics-addr :9090]
//	         [-metrics-out metrics.prom] [-trace-stream events.chmtrc]
//	         [-trace-rotate BYTES]
//	         [-adaptive [-adapt-interval D] [-adapt-guard F]]
//	chainmon trace convert events.chmtrc out.json
//	chainmon trace report [-top N] events.chmtrc
//	chainmon trace report -blame events.chmtrc
//	chainmon trace report -diff [-diff-rel F] [-diff-abs D] [-diff-miss F] old.chmtrc new.chmtrc
//	chainmon fleet [-fleet-size N] [-fleet-seed S] [-fleet-jitter J]
//	         [-parallel W] [-fleet-out fleet.json] [-frames N] [-full]
//	         [-fault-mix nominal,burst-loss] [-oracle] [-blame] [-config base.json]
//	         [-metrics-out metrics.prom]
//	         [-saturate [-sat-lo L] [-sat-hi H] [-sat-step S] [-sat-target T]]
//
// "chainmon fleet" scales the scenario to a population: N vehicles, each
// parameter-jittered from the base by a seeded RNG, sharded over the worker
// pool and merged deterministically (the fleet output is byte-identical
// between -parallel 1 and -parallel N).
//
// With -realtime the monitor core runs on the wall clock instead of the
// simulation: a real producer goroutine, real deadlines, and /metrics
// served live *during* the run (the simulation mode serves metrics only
// after the run finished).
//
// -trace-stream drains the flight recorder to an append-only binary log as
// the run progresses (bounded memory; drops are counted, never blocking);
// -trace-rotate caps segment size and gzip-compresses the segments.
// "chainmon trace convert" turns such a log into Perfetto-loadable JSON with
// flow arrows linking each activation's hops; "chainmon trace report"
// prints the end-to-end latency attribution (per-hop and per-segment
// quantiles, worst activation path — "-top N" keeps the N worst);
// "trace report -blame" recomputes the per-activation miss attribution
// (slack ledgers, blame shares, worst-miss exemplars) offline,
// byte-identical to the run's own /health blame section; "trace report
// -diff" compares two logs and exits nonzero when the new one regressed
// beyond the thresholds.
//
// Whenever telemetry is on, a live health layer rides along: streaming
// quantile sketches and (m,k) SLO burn tracking per segment and chain,
// exported as chainmon_live_* gauges on /metrics (and in -metrics-out) and
// as a JSON document on /health. The -metrics-addr mux also mounts
// net/http/pprof under /debug/pprof/.
//
// -adaptive closes the loop between the health layer and the monitor: a
// periodic controller re-solves the local segment deadlines from the live
// latency quantiles and hot-swaps them through the budget table, guarded by
// hysteresis (-adapt-guard), min/max clamps, a solver margin and burn-aware
// hold/rollback rules. In the simulation the controller ticks as a kernel
// event, so same-seed runs produce byte-identical actuation sequences; with
// -realtime it ticks on a wall-clock ticker. The actuation history and the
// current budget table are part of the /health document.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"chainmon/internal/adaptive"
	"chainmon/internal/blame"
	"chainmon/internal/faultinject"
	"chainmon/internal/livestats"
	"chainmon/internal/monitor"
	"chainmon/internal/parallel"
	"chainmon/internal/perception"
	"chainmon/internal/realtime"
	"chainmon/internal/scenario"
	"chainmon/internal/sim"
	"chainmon/internal/telemetry"
	"chainmon/internal/trace"
	"chainmon/internal/weaklyhard"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTraceCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		runFleetCmd(os.Args[2:])
		return
	}

	frames := flag.Int("frames", 600, "number of lidar frames to simulate")
	seed := flag.Int64("seed", 1, "simulation seed")
	deadline := flag.Duration("deadline", 100*time.Millisecond, "local segment deadline d_mon")
	loss := flag.Float64("loss", 0, "inter-ECU message loss probability")
	full := flag.Bool("full", false, "monitor the full chains (remote + fusion segments)")
	withRecovery := flag.Bool("recover", false, "install recovery handlers on the lidar remote segments")
	traceOut := flag.String("trace", "", "also record an unmonitored trace to this JSON file")
	configPath := flag.String("config", "", "JSON scenario file (flags are applied on top)")
	faultsPath := flag.String("faults", "", "JSON fault-campaign file injected into the run (cross-checked by the ground-truth oracle with -full)")
	seeds := flag.Int("seeds", 1, "run the scenario at N consecutive seeds starting at -seed; reports are merged in seed order")
	workers := flag.Int("parallel", 0, "worker pool size for -seeds runs (0: GOMAXPROCS, 1: serial)")
	telTrace := flag.String("telemetry-trace", "", "write the monitor's own flight-recorder trace (Chrome trace-event JSON, open in Perfetto)")
	metricsOut := flag.String("metrics-out", "", "write the monitor's metrics as Prometheus text to this file after the run")
	telCSV := flag.String("telemetry-csv", "", "write the flight-recorder events as CSV to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics on this address after the run (blocks; ctrl-C to exit). With -realtime: serve live during the run")
	traceStream := flag.String("trace-stream", "", "stream the flight recorder to this binary log while the run progresses (see 'chainmon trace convert/report')")
	traceRotate := flag.Int64("trace-rotate", 0, "rotate the -trace-stream log into gzip-compressed segments (<log>.0.gz, .1.gz, …) of roughly this many uncompressed bytes each")
	rtMode := flag.Bool("realtime", false, "run the monitor core on the wall clock (real goroutines and deadlines) instead of the simulation")
	adaptiveFlag := flag.Bool("adaptive", false, "run the adaptive budget control loop: periodically re-solve the segment deadlines from live latency quantiles and hot-swap them mid-run")
	adaptInterval := flag.Duration("adapt-interval", time.Second, "control-loop tick interval (virtual time in the simulation, wall time with -realtime)")
	adaptGuard := flag.Float64("adapt-guard", adaptive.DefaultHysteresis, "control-loop hysteresis dead band, as a fraction of the current deadline")
	flag.Parse()

	if *traceRotate < 0 {
		log.Fatal("-trace-rotate must be positive")
	}
	if *traceRotate > 0 && *traceStream == "" {
		log.Fatal("-trace-rotate requires -trace-stream")
	}

	if *rtMode {
		// A wall-clock run has no seeds to sweep, no faults to inject and
		// no virtual network: every simulation-only flag is a user error,
		// rejected loudly instead of silently ignored.
		rcfg := realtime.DefaultConfig()
		var bad []string
		flag.Visit(func(fl *flag.Flag) {
			switch fl.Name {
			case "frames":
				rcfg.Frames = *frames
			case "seed":
				rcfg.Seed = *seed
			case "realtime", "metrics-addr", "metrics-out", "trace-stream", "trace-rotate",
				"adaptive", "adapt-interval", "adapt-guard":
			default:
				bad = append(bad, "-"+fl.Name)
			}
		})
		if len(bad) > 0 {
			log.Fatalf("-realtime is a wall-clock run; it cannot combine with the simulation-only flags %s", strings.Join(bad, ", "))
		}
		var ad *adaptOpts
		if *adaptiveFlag {
			ad = &adaptOpts{interval: *adaptInterval, guard: *adaptGuard}
		}
		runRealtime(rcfg, *metricsAddr, *metricsOut, *traceStream, *traceRotate, ad)
		return
	}

	cfg := perception.DefaultConfig()
	var camp faultinject.Campaign
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			log.Fatalf("opening scenario: %v", err)
		}
		cfg, camp, err = scenario.LoadFull(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	if *faultsPath != "" {
		f, err := os.Open(*faultsPath)
		if err != nil {
			log.Fatalf("opening fault campaign: %v", err)
		}
		fc, err := faultinject.LoadCampaign(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		// A -faults campaign rides on top of any scenario-embedded faults.
		camp.Name = fc.Name
		camp.Faults = append(camp.Faults, fc.Faults...)
	}
	flag.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "frames":
			cfg.Frames = *frames
		case "seed":
			cfg.Seed = *seed
		case "deadline":
			cfg.LocalDeadline = sim.Duration(*deadline)
		case "loss":
			cfg.Network.LossProb = *loss
		case "full":
			cfg.FullChain = *full
		}
	})
	if *configPath == "" {
		cfg.Frames = *frames
		cfg.Seed = *seed
		cfg.LocalDeadline = sim.Duration(*deadline)
		cfg.Network.LossProb = *loss
		cfg.FullChain = *full
	}
	if *withRecovery {
		recover := func(ctx *monitor.ExceptionContext) *monitor.Recovery {
			// Hold-over recovery: repeat the last frame's shape.
			return &monitor.Recovery{
				Data: &perception.FrameData{Points: 11000, FrontOnly: true},
				Size: 16 * 11000,
			}
		}
		cfg.Handlers = map[string]monitor.Handler{
			perception.SegFrontRemote: recover,
			perception.SegRearRemote:  recover,
		}
	}

	// The control loop reads live quantiles, so -adaptive implies the live
	// health layer even when no exporter was asked for.
	wantTelemetry := *telTrace != "" || *metricsOut != "" || *telCSV != "" || *metricsAddr != "" || *traceStream != "" || *adaptiveFlag

	if *seeds > 1 {
		if *adaptiveFlag {
			log.Fatal("-adaptive applies to a single run; drop it or use -seeds 1")
		}
		// Multi-seed sweep: each seed is an independent simulation sharded
		// over the worker pool; the merged output is ordered by seed, so a
		// parallel sweep prints exactly what the serial one would.
		if wantTelemetry || *traceOut != "" {
			log.Fatal("-telemetry-*/-metrics-*/-trace apply to a single run; drop them or use -seeds 1")
		}
		type outcome struct {
			out   []byte
			sound bool
		}
		results := parallel.Map(*workers, *seeds, func(shard int) outcome {
			c := cfg
			c.Seed = cfg.Seed + int64(shard)
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "### seed %d\n", c.Seed)
			sound := runOne(c, camp, nil, nil, nil, &buf)
			return outcome{buf.Bytes(), sound}
		})
		allSound := true
		for _, r := range results {
			os.Stdout.Write(r.out)
			allSound = allSound && r.sound
		}
		if !allSound {
			os.Exit(1)
		}
		return
	}

	// The sink (and its streaming writer, when -trace-stream is given) must
	// exist before the system is built: SetStream has to precede the first
	// track so every event of the run reaches the log.
	var sink *telemetry.Sink
	var stream *telemetry.StreamWriter
	var live *livestats.Set
	if wantTelemetry {
		sink = telemetry.NewSink(telemetry.DefaultTrackCap)
		if *traceStream != "" {
			var err error
			// The simulation is single-threaded, so the direct (inline) mode
			// is used: deterministic, byte-identical across same-seed runs.
			stream, err = telemetry.NewStreamFile(*traceStream, "sim", telemetry.StreamOptions{
				Metrics:     sink.Reg,
				RotateBytes: *traceRotate,
			})
			if err != nil {
				log.Fatalf("starting trace stream: %v", err)
			}
			sink.Rec.SetStream(stream)
		}
		live = newLiveSet(sink, stream)
	}
	scenarioName := "perception"
	if *configPath != "" {
		scenarioName = strings.TrimSuffix(filepath.Base(*configPath), filepath.Ext(*configPath))
	}
	eng := attachBlame(sink, stream, live, "sim", scenarioName)

	var ad *adaptOpts
	if *adaptiveFlag {
		ad = &adaptOpts{interval: *adaptInterval, guard: *adaptGuard}
	}
	sound := runOne(cfg, camp, sink, live, ad, os.Stdout)
	finishBlame(eng, sink)
	closeStream(stream, *traceStream)
	if !sound {
		os.Exit(1)
	}

	if *traceOut != "" {
		writeTrace(*traceOut, cfg)
	}

	if sink != nil {
		writeTelemetry(sink, *telTrace, *metricsOut, *telCSV)
		if *metricsAddr != "" {
			fmt.Printf("serving metrics on http://%s/metrics (+ /health, /debug/pprof/)\n", *metricsAddr)
			http.Handle("/metrics", sink.Handler())
			http.Handle("/health", live.Handler())
			// net/http/pprof's import already mounted /debug/pprof/ on the
			// default mux this server uses.
			log.Fatal(http.ListenAndServe(*metricsAddr, nil))
		}
	}
}

// newLiveSet builds the live health layer shared by both timebases: its
// gauges are republished into the registry on every metrics export (so the
// live /metrics scrape and the -metrics-out snapshot always agree), and the
// flight-recorder/stream drop totals surface in /health.
func newLiveSet(sink *telemetry.Sink, stream *telemetry.StreamWriter) *livestats.Set {
	live := livestats.NewSet(0)
	sink.AddExportHook(func() { live.PublishMetrics(sink.Reg) })
	if rec := sink.Rec; rec != nil {
		live.AddDropSource("flight-recorder", func() uint64 {
			var total uint64
			for _, t := range rec.Tracks() {
				total += t.Dropped()
			}
			return total
		})
	}
	if stream != nil {
		live.AddDropSource("trace-stream", stream.Dropped)
	}
	return live
}

// attachBlame wires the miss-attribution engine into a telemetry-enabled
// run: fed from the stream writer when one exists (so the engine sees
// exactly the event sequence that reaches the log — the byte-identity
// contract with `trace report -blame`), from the flight recorder otherwise.
// The engine surfaces as the `blame` section of /health, as
// chainmon_blame_* gauges on every metrics export, and its `meta` sibling
// section describes the running binary. Returns nil when telemetry is off.
func attachBlame(sink *telemetry.Sink, stream *telemetry.StreamWriter, live *livestats.Set, timebase, scenario string) *blame.Engine {
	if sink == nil || sink.Rec == nil {
		return nil
	}
	eng := blame.New(blame.Options{})
	eng.SetTimebase(timebase)
	if stream != nil {
		stream.SetObserver(eng.Feed)
	} else {
		sink.Rec.SetObserver(eng.Feed)
	}
	sink.AddExportHook(func() {
		eng.PublishMetrics(sink.Reg, blame.RecorderResolvers(sink.Rec))
	})
	if live != nil {
		live.SetBlameProvider(func() any {
			return eng.Snapshot(blame.RecorderResolvers(sink.Rec))
		})
		live.SetMetaProvider(metaProvider(scenario, eng))
	}
	return eng
}

// metaProvider builds the /health meta section: build identity from the
// binary itself, the scenario name, uptime, and the budget epoch currently
// in force (as observed by the blame engine). Consumers that don't know the
// section (cmd/budgetsolve -from-health) ignore it.
func metaProvider(scenario string, eng *blame.Engine) func() any {
	type runMeta struct {
		Version     string `json:"version"`
		GoVersion   string `json:"go_version"`
		Scenario    string `json:"scenario"`
		UptimeNS    int64  `json:"uptime_ns"`
		BudgetEpoch uint64 `json:"budget_epoch"`
	}
	version, goVersion := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
	}
	start := time.Now()
	return func() any {
		return runMeta{
			Version:     version,
			GoVersion:   goVersion,
			Scenario:    scenario,
			UptimeNS:    time.Since(start).Nanoseconds(),
			BudgetEpoch: eng.Epoch(),
		}
	}
}

// finishBlame settles the engine at the end of a simulation run: every
// still-pending activation is finalized and the exemplar-admission records
// are appended to the blame-exemplar flight-recorder track (reaching the
// stream log too when one is attached — the sim writes inline, so this must
// run before closeStream).
func finishBlame(eng *blame.Engine, sink *telemetry.Sink) {
	if eng == nil {
		return
	}
	eng.Flush()
	eng.FlushExemplars(sink.Rec.Track("blame-exemplar"))
}

// closeStream flushes and closes the streaming trace before any metrics
// snapshot is taken, so chainmon_stream_* in -metrics-out reflect the final
// counts (snapshot and live /metrics must agree at run end).
func closeStream(stream *telemetry.StreamWriter, path string) {
	if stream == nil {
		return
	}
	if err := stream.Close(); err != nil {
		log.Fatalf("closing trace stream: %v", err)
	}
	rotated := ""
	if n := stream.Rotations(); n > 0 {
		rotated = fmt.Sprintf(", %d rotations", n)
	}
	fmt.Printf("trace stream written to %s (%d events, %d bytes, %d dropped%s)\n",
		path, stream.EventsWritten(), stream.BytesWritten(), stream.Dropped(), rotated)
}

// runTraceCmd implements the offline "chainmon trace" subcommands operating
// on a streamed binary log (plain, gzip-compressed, or rotated into
// segments — OpenLogSet reads all three transparently).
func runTraceCmd(args []string) {
	fail := func() {
		fmt.Fprintln(os.Stderr, "usage: chainmon trace convert <in.chmtrc> <out.json>")
		fmt.Fprintln(os.Stderr, "       chainmon trace report [-top N] <in.chmtrc>")
		fmt.Fprintln(os.Stderr, "       chainmon trace report -blame <in.chmtrc>")
		fmt.Fprintln(os.Stderr, "       chainmon trace report -diff [-diff-rel F] [-diff-abs D] [-diff-miss F] <old.chmtrc> <new.chmtrc>")
		os.Exit(2)
	}
	if len(args) < 2 {
		fail()
	}
	openLog := func(path string) *telemetry.Log {
		l, err := telemetry.OpenLogSet(path)
		if err != nil {
			log.Fatalf("reading trace stream: %v", err)
		}
		return l
	}
	switch args[0] {
	case "convert":
		if len(args) != 3 {
			fail()
		}
		l := openLog(args[1])
		out, err := os.Create(args[2])
		if err != nil {
			log.Fatalf("creating trace JSON: %v", err)
		}
		if err := l.WritePerfetto(out); err != nil {
			out.Close()
			log.Fatalf("writing trace JSON: %v", err)
		}
		if err := out.Close(); err != nil {
			log.Fatalf("closing trace JSON: %v", err)
		}
		fmt.Printf("%d events on %d tracks converted to %s\n", l.Events(), len(l.Tracks()), args[2])
	case "report":
		fs := flag.NewFlagSet("trace report", flag.ExitOnError)
		diffMode := fs.Bool("diff", false, "compare two logs and exit 1 when the new one regressed beyond the thresholds")
		diffRel := fs.Float64("diff-rel", 0, "allowed relative quantile growth (default 0.10)")
		diffAbs := fs.Duration("diff-abs", 0, "absolute quantile growth floor (default 1ms)")
		diffMiss := fs.Float64("diff-miss", 0, "allowed per-segment miss-fraction growth (default 0.01)")
		blameMode := fs.Bool("blame", false, "recompute the per-activation miss attribution from the log and print it as JSON (byte-identical to the run's /health blame section)")
		topN := fs.Int("top", 1, "keep the worst N activation paths per scope (same ordering as the blame engine's exemplar store)")
		fs.Parse(args[1:])
		rest := fs.Args()
		if *blameMode {
			if *diffMode || len(rest) != 1 {
				fail()
			}
			l := openLog(rest[0])
			eng := blame.FromLog(l, blame.Options{})
			doc := eng.Snapshot(blame.LogResolvers(l))
			out, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				log.Fatalf("marshaling blame report: %v", err)
			}
			os.Stdout.Write(append(out, '\n'))
			return
		}
		if *diffMode {
			if len(rest) != 2 {
				fail()
			}
			oldRep := telemetry.BuildReport(openLog(rest[0]))
			newRep := telemetry.BuildReport(openLog(rest[1]))
			d := trace.DiffReports(oldRep, newRep, trace.DiffThresholds{
				RelFrac:  *diffRel,
				AbsNS:    *diffAbs,
				MissFrac: *diffMiss,
			})
			d.Write(os.Stdout)
			if len(d.Regressions()) > 0 {
				os.Exit(1)
			}
			return
		}
		if len(rest) != 1 {
			fail()
		}
		telemetry.BuildReportTop(openLog(rest[0]), *topN).Write(os.Stdout)
	default:
		fail()
	}
}

// adaptOpts carries the -adaptive flags into a run.
type adaptOpts struct {
	interval time.Duration
	guard    float64
}

// attachAdaptive wires the budget control loop to the ECU2 evaluation
// segments: a fresh BudgetTable on their monitor, a controller solving over
// the live quantiles, and a deterministic kernel-event tick schedule.
func attachAdaptive(s *perception.System, live *livestats.Set, sink *telemetry.Sink, ad *adaptOpts) *adaptive.Controller {
	cfg := s.Cfg
	table := monitor.NewBudgetTable()
	s.MonECU2.AttachBudget(table)
	chain := ""
	if cfg.FullChain {
		// The front chain ends in the objects segment; its burn state gates
		// rollback for the controlled pair.
		chain = s.ChainFront.Name
	}
	ctrl, err := adaptive.New(adaptive.Config{
		Set: live, Table: table, Chain: chain,
		Segments: []adaptive.SegmentSpec{
			{Name: perception.SegObjectsLocal, Propagation: 1,
				Initial: cfg.LocalDeadline, Min: cfg.LocalDeadline / 20, Max: cfg.LocalDeadline},
			{Name: perception.SegGroundLocal, Propagation: 1,
				Initial: cfg.LocalDeadline, Min: cfg.LocalDeadline / 20, Max: cfg.LocalDeadline},
		},
		DEx: sim.Millisecond,
		// Both segments at their Max plus 10% headroom: the budget cap is a
		// sanity bound here, not the binding constraint — Min/Max clamps are.
		Be2e:       2*(cfg.LocalDeadline+sim.Millisecond) + cfg.LocalDeadline/5,
		Constraint: cfg.Constraint,
		Guard:      adaptive.Guardrails{Hysteresis: ad.guard},
		Sink:       sink,
	})
	if err != nil {
		log.Fatalf("building adaptive controller: %v", err)
	}
	ctrl.ScheduleSim(s.K, ad.interval, sim.Time(cfg.Frames)*sim.Time(cfg.Period))
	return ctrl
}

// printActuations summarizes the control loop's decisions after a run.
// baseNS is subtracted from the tick timestamps: zero for the simulation
// (virtual time already starts at zero), the run's start time on the wall
// clock (ticks are stamped with absolute unix nanos there).
func printActuations(w io.Writer, hist []adaptive.Actuation, baseNS int64) {
	counts := map[string]int{}
	for _, a := range hist {
		counts[a.Result]++
	}
	fmt.Fprintf(w, "\nadaptive budget loop: %d ticks (%d applied, %d held, %d infeasible, %d rollback)\n",
		len(hist), counts[adaptive.ResultApplied], counts[adaptive.ResultHeld],
		counts[adaptive.ResultInfeasible], counts[adaptive.ResultRollback])
	for _, a := range hist {
		if a.Result == adaptive.ResultHeld {
			continue
		}
		fmt.Fprintf(w, "  t=%-12v epoch=%d %-10s", time.Duration(a.AtNS-baseNS), a.Epoch, a.Result)
		names := make([]string, 0, len(a.DeadlinesNS))
		for name := range a.DeadlinesNS {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, " %s=%v", name, time.Duration(a.DeadlinesNS[name]))
		}
		if a.Reason != "" {
			fmt.Fprintf(w, "  (%s)", a.Reason)
		}
		fmt.Fprintln(w)
	}
}

// runOne builds the system for one configuration, runs it and writes the
// full report to w. A non-nil sink (and live set) is wired into the system
// (single-run only). The returned flag is false when a fault-campaign
// oracle cross-check failed.
func runOne(cfg perception.Config, camp faultinject.Campaign, sink *telemetry.Sink, live *livestats.Set, ad *adaptOpts, w io.Writer) bool {
	s := perception.Build(cfg)
	if sink != nil {
		perception.AttachTelemetry(s, sink)
	}
	if live != nil {
		perception.AttachLive(s, live)
	}
	var ctrl *adaptive.Controller
	if ad != nil && s.MonECU2 != nil && live != nil {
		ctrl = attachAdaptive(s, live, sink, ad)
	}
	var sup *monitor.Supervisor
	if cfg.FullChain {
		// System-level entity: derive an operating mode from the chain
		// windows (degrade on a violated window, safe-stop if it persists).
		sup = monitor.NewSupervisor(s.K, 5)
		sup.Watch(s.ChainFront)
		sup.Watch(s.ChainRear)
		sup.AttachTelemetry(sink)
	}
	var oracle *faultinject.Oracle
	if len(camp.Faults) > 0 {
		if cfg.FullChain {
			// Wire the ground-truth oracle before the run so its raw hooks
			// observe every event; cross-check after the kernel ran dry.
			oracle = faultinject.ForPerception(s, camp)
		}
		if err := faultinject.NewInjector(sim.NewRNG(cfg.Seed)).Apply(camp, faultinject.TargetsOf(s)); err != nil {
			log.Fatalf("applying fault campaign: %v", err)
		}
		fmt.Fprintf(w, "fault campaign %q armed: %d faults\n", camp.Name, len(camp.Faults))
	}
	end := s.Run()

	fmt.Fprintf(w, "simulated %v of operation (%d frames at %v period)\n\n",
		sim.Duration(end), cfg.Frames, cfg.Period)

	fmt.Fprintln(w, "evaluation segments on ECU2:")
	for _, seg := range []*monitor.LocalSegment{s.SegObjects, s.SegGround} {
		st := seg.Stats()
		fmt.Fprintf(w, "  %s\n", st.Summary())
		fmt.Fprintf(w, "    %s\n", st.Latencies().Tukey().DurationRow("latency"))
		if st.Exceptions() > 0 {
			fmt.Fprintf(w, "    %s\n", st.DetectionLatencies().Tukey().DurationRow("detection"))
		}
	}

	fmt.Fprintln(w, "\nmonitor overheads (simulated):")
	for _, row := range s.MonECU2.Overheads().Rows() {
		fmt.Fprintf(w, "  %s\n", row)
	}

	if ctrl != nil {
		printActuations(w, ctrl.History(), 0)
	}

	if cfg.FullChain {
		fmt.Fprintln(w)
		fmt.Fprint(w, s.ChainFront.Summary())
		fmt.Fprint(w, s.ChainRear.Summary())
		fmt.Fprintf(w, "\nsupervisor final mode: %v\n", sup.Mode())
		for _, ch := range sup.Changes() {
			fmt.Fprintf(w, "  %v  %v → %v (%s: %s)\n", ch.At, ch.From, ch.To, ch.Chain, ch.Reason)
		}
	}

	sound := true
	if oracle != nil {
		rep := oracle.Check()
		fmt.Fprintln(w, "\nground-truth oracle cross-check:")
		for _, sr := range rep.Segments {
			fmt.Fprintf(w, "  %s\n", sr)
		}
		if rep.Ok() {
			fmt.Fprintln(w, "  verdicts sound: no false negatives, exceptions within the ε-band")
		} else {
			for _, v := range rep.Violations {
				fmt.Fprintf(w, "  VIOLATION %s\n", v)
			}
			sound = false
		}
	}
	return sound
}

// writeTelemetry dumps the sink to the requested files; an empty path skips
// that exporter.
func writeTelemetry(sink *telemetry.Sink, tracePath, metricsPath, csvPath string) {
	write := func(path, what string, fn func(w io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("creating %s file: %v", what, err)
		}
		if err := fn(f); err != nil {
			f.Close()
			log.Fatalf("writing %s: %v", what, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("closing %s file: %v", what, err)
		}
		fmt.Printf("%s written to %s\n", what, path)
	}
	write(tracePath, "telemetry trace", sink.WritePerfetto)
	write(metricsPath, "metrics", sink.WriteMetrics)
	write(csvPath, "telemetry CSV", sink.WriteEventsCSV)
}

// writeTrace records an unmonitored run of the same scenario and writes the
// trace for cmd/budgetsolve.
func writeTrace(path string, cfg perception.Config) {
	cfg.Monitored = false
	cfg.FullChain = false
	cfg.Handlers = nil
	cfg.Record = true
	s := perception.Build(cfg)
	s.Run()
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("creating trace file: %v", err)
	}
	defer f.Close()
	if err := s.Recorder.Trace().WriteJSON(f); err != nil {
		log.Fatalf("writing trace: %v", err)
	}
	fmt.Printf("\nunmonitored trace written to %s\n", path)
}

// runRealtime executes the wall-clock scenario. Unlike the simulation path,
// the metrics endpoint is bound *before* the run starts and serves the live
// registry while frames are still in flight; the process exits once the run
// and the final exports are done.
//
// With traceStream set, the run gets a full sink (flight recorder + flow
// tracing) and a background streaming writer: producers and the monitor
// goroutine append to lock-free rings, a drainer goroutine writes the log —
// bounded memory regardless of run length, drops counted in
// chainmon_stream_dropped_total.
func runRealtime(cfg realtime.Config, metricsAddr, metricsOut, traceStream string, traceRotate int64, ad *adaptOpts) {
	var sink *telemetry.Sink
	var stream *telemetry.StreamWriter
	if traceStream != "" {
		sink = telemetry.NewSink(telemetry.DefaultTrackCap)
		var err error
		stream, err = telemetry.NewStreamFile(traceStream, "wall", telemetry.StreamOptions{
			Background:  true,
			Metrics:     sink.Reg,
			RotateBytes: traceRotate,
		})
		if err != nil {
			log.Fatalf("starting trace stream: %v", err)
		}
		sink.Rec.SetStream(stream)
	} else {
		sink = &telemetry.Sink{Reg: telemetry.NewRegistry()}
	}
	live := newLiveSet(sink, stream)
	cfg.Live = live
	// Blame rides the stream observer: it sees exactly what the drainer
	// writes to the log, in log order, so the live /health blame section and
	// an offline `trace report -blame` of the written log agree byte for
	// byte. Without a stream there is no flight recorder in this mode, and
	// the engine stays detached (attachBlame returns nil).
	eng := attachBlame(sink, stream, live, "wall", "realtime")

	var ctrl *adaptive.Controller
	if ad != nil {
		cfg.Budget = monitor.NewBudgetTable()
		var err error
		ctrl, err = adaptive.New(adaptive.Config{
			Set: live, Table: cfg.Budget, Chain: "rt",
			Segments: []adaptive.SegmentSpec{
				{Name: realtime.SegObjects, Propagation: 1,
					Initial: sim.Duration(cfg.Deadline), Min: sim.Duration(time.Millisecond),
					Max: sim.Duration(cfg.Period - time.Millisecond)},
				{Name: realtime.SegGround, Propagation: 1,
					Initial: sim.Duration(cfg.Deadline), Min: sim.Duration(time.Millisecond),
					Max: sim.Duration(cfg.Period - time.Millisecond)},
			},
			DEx:  sim.Duration(time.Millisecond),
			Be2e: 2 * sim.Duration(cfg.Period),
			// Matches the (m,k) budget realtime.Run installs on its segments.
			Constraint: weaklyhard.Constraint{M: 1, K: 5},
			Guard:      adaptive.Guardrails{Hysteresis: ad.guard},
			Sink:       sink,
		})
		if err != nil {
			log.Fatalf("building adaptive controller: %v", err)
		}
	}

	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			log.Fatalf("binding metrics listener: %v", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", sink.Handler())
		mux.Handle("/health", live.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				log.Printf("metrics server stopped: %v", err)
			}
		}()
		fmt.Printf("serving live metrics on http://%s/metrics (+ /health, /debug/pprof/)\n", ln.Addr())
	}

	var stopCtrl func()
	startNS := time.Now().UnixNano()
	if ctrl != nil {
		stopCtrl = ctrl.StartWall(ad.interval)
	}
	res, err := realtime.Run(cfg, sink)
	if stopCtrl != nil {
		stopCtrl()
	}
	if err != nil {
		log.Fatalf("wall-clock run failed: %v", err)
	}
	// Exemplar admissions observed so far go to the log through the still-
	// running drainer; the engine itself is flushed only after the stream
	// closed, once the observer has seen every drained event — the same
	// feed-everything-then-flush order an offline replay of the log uses.
	if eng != nil {
		eng.FlushExemplars(sink.Rec.Track("blame-exemplar"))
	}
	// Final flush before the metrics snapshot, so -metrics-out agrees with
	// what a last live /metrics scrape would have shown.
	closeStream(stream, traceStream)
	if eng != nil {
		eng.Flush()
	}
	res.Summary(os.Stdout)
	if ctrl != nil {
		printActuations(os.Stdout, ctrl.History(), startNS)
	}
	writeTelemetry(sink, "", metricsOut, "")
}
