package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"chainmon/internal/fleet"
	"chainmon/internal/perception"
	"chainmon/internal/scenario"
	"chainmon/internal/telemetry"
)

// runFleetCmd implements "chainmon fleet": N parameter-jittered vehicle
// sims instantiated from one base scenario, sharded over the worker pool
// and merged deterministically — the fleet summary is byte-identical
// between -parallel 1 and -parallel N. Optionally a fault-class mix is
// assigned round-robin across the fleet, the ground-truth oracle is
// cross-checked per vehicle, and a saturation search reports the load
// multiplier at which the fleet starts missing its deadline target.
func runFleetCmd(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	size := fs.Int("fleet-size", 100, "number of vehicles in the fleet")
	seed := fs.Int64("fleet-seed", 1, "fleet seed; every vehicle seed is split from it")
	jitter := fs.Float64("fleet-jitter", 0.1, "relative per-vehicle parameter jitter in [0,1): clock ε, link BCRT and jitter, frame period, executor load, loss")
	workers := fs.Int("parallel", 0, "worker pool size (0: GOMAXPROCS, 1: serial)")
	outPath := fs.String("fleet-out", "", "write the full fleet summary (per-vehicle rows included) as JSON to this file (- for stdout)")
	frames := fs.Int("frames", 120, "lidar frames per vehicle")
	configPath := fs.String("config", "", "JSON scenario file used as the jitter base (flags are applied on top)")
	full := fs.Bool("full", false, "monitor the full chains (remote + fusion segments) on every vehicle")
	mixFlag := fs.String("fault-mix", "", "comma-separated chaos campaign names assigned round-robin to vehicles; \"nominal\" is a fault-free slot (e.g. nominal,burst-loss,clock-step)")
	withOracle := fs.Bool("oracle", false, "cross-check every vehicle with the ground-truth soundness oracle (requires -full); exits nonzero on any false negative")
	withBlame := fs.Bool("blame", false, "attach a per-vehicle miss-attribution engine and roll the blame summaries up into the fleet result")
	metricsOut := fs.String("metrics-out", "", "write the fleet rollup as Prometheus text to this file")
	saturate := fs.Bool("saturate", false, "binary-search the load multiplier at which the fleet misses the -sat-target rate")
	satLo := fs.Float64("sat-lo", 0.5, "saturation search: lowest load multiplier")
	satHi := fs.Float64("sat-hi", 2.0, "saturation search: highest load multiplier")
	satStep := fs.Float64("sat-step", 0.1, "saturation search: grid resolution of the reported knee")
	satTarget := fs.Float64("sat-target", 0.01, "saturation search: acceptable fleet miss rate")
	fs.Parse(args)
	if fs.NArg() > 0 {
		log.Fatalf("chainmon fleet: unexpected arguments %q", fs.Args())
	}

	base := perception.DefaultConfig()
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			log.Fatalf("opening scenario: %v", err)
		}
		var loadErr error
		base, loadErr = scenario.Load(f)
		f.Close()
		if loadErr != nil {
			log.Fatal(loadErr)
		}
	}
	// Flags override the scenario file only when set explicitly, matching
	// the single-run command's layering.
	if *configPath == "" {
		base.Frames = *frames
		base.FullChain = *full
	} else {
		fs.Visit(func(fl *flag.Flag) {
			switch fl.Name {
			case "frames":
				base.Frames = *frames
			case "full":
				base.FullChain = *full
			}
		})
	}
	if *withOracle {
		base.FullChain = true
	}

	cfg := fleet.Config{
		Size:    *size,
		Seed:    *seed,
		Jitter:  fleet.Uniform(*jitter),
		Base:    base,
		Oracle:  *withOracle,
		Blame:   *withBlame,
		Workers: *workers,
	}
	if *mixFlag != "" {
		names := strings.Split(*mixFlag, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		m, err := fleet.MixByName(names)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Mix = m
	}

	res, err := fleet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *saturate {
		knee, err := fleet.SaturationSearch(cfg, fleet.SaturationConfig{
			Lo: *satLo, Hi: *satHi, Step: *satStep, Target: *satTarget,
		})
		if err != nil {
			log.Fatalf("saturation search: %v", err)
		}
		res.Knee = &knee
	}

	os.Stdout.WriteString(res.Summary())

	if *outPath != "" {
		if *outPath == "-" {
			if err := res.WriteJSON(os.Stdout); err != nil {
				log.Fatalf("writing fleet summary: %v", err)
			}
		} else {
			f, err := os.Create(*outPath)
			if err != nil {
				log.Fatalf("creating fleet summary: %v", err)
			}
			if err := res.WriteJSON(f); err != nil {
				f.Close()
				log.Fatalf("writing fleet summary: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("closing fleet summary: %v", err)
			}
			fmt.Printf("fleet summary written to %s\n", *outPath)
		}
	}
	if *metricsOut != "" {
		reg := telemetry.NewRegistry()
		res.Rollup(reg)
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatalf("creating metrics file: %v", err)
		}
		if err := (&telemetry.Sink{Reg: reg}).WriteMetrics(f); err != nil {
			f.Close()
			log.Fatalf("writing metrics: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("closing metrics file: %v", err)
		}
		fmt.Printf("fleet metrics written to %s\n", *metricsOut)
	}

	if len(res.Errs()) > 0 {
		os.Exit(1)
	}
	if *withOracle && (res.FalseNegatives() > 0 || res.FalsePositives() > 0) {
		os.Exit(1)
	}
}
