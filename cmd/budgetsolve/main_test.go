package main

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"chainmon/internal/budget"
	"chainmon/internal/livestats"
	"chainmon/internal/weaklyhard"
)

// TestHealthProblemMatchesControllerFrontend pins the agreement contract of
// -from-health: solving over a scraped /health document (including the JSON
// round trip) must produce byte-for-byte the same deadline assignment as
// the adaptive controller's in-process frontend, which reads the same
// quantile points straight from the live sketches. Both funnel into
// budget.LiveProblem.Build; this test would catch either side drifting to a
// different point set, trace synthesis or solver entry point.
func TestHealthProblemMatchesControllerFrontend(t *testing.T) {
	c := weaklyhard.Constraint{M: 1, K: 8}
	set := livestats.NewSet(0.01)
	segs := []string{"stage/a", "stage/b"}
	for i, name := range segs {
		sc := set.Segment(name, c)
		for j := 0; j < 300; j++ {
			// Distinct skewed distributions per segment.
			lat := float64(2_000_000+i*1_500_000) + float64(j%97)*40_000
			if j%41 == 0 {
				lat *= 2.5 // heavy tail
			}
			sc.Observe(lat, false)
		}
	}

	const (
		dex  = int64(1_000_000)
		be2e = int64(40_000_000)
	)

	// Offline path: Health → JSON → parse → healthProblem (what the CLI does
	// with a scraped document).
	raw, err := json.Marshal(set.Health())
	if err != nil {
		t.Fatal(err)
	}
	var h livestats.Health
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatal(err)
	}
	offline, skipped, err := healthProblem(h, segs, dex, be2e, 0, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped %v, want none", skipped)
	}

	// Online path: the controller's frontend — quantile points read directly
	// from the live scopes (internal/adaptive reads {p50, p95, p99, max} via
	// QuantileOK and builds the same LiveProblem).
	live := make([]budget.LiveSegment, 0, len(segs))
	for _, name := range segs {
		sc := set.Segment(name, c)
		var pts []budget.QuantilePoint
		for _, q := range []float64{0.50, 0.95, 0.99, 1.00} {
			v, ok := sc.QuantileOK(q)
			if !ok {
				t.Fatalf("segment %s: quantile %v unobserved", name, q)
			}
			pts = append(pts, budget.QuantilePoint{Q: q, NS: v})
		}
		live = append(live, budget.LiveSegment{
			Name: name, Propagation: 1, Count: sc.Count(), Points: pts,
		})
	}
	online, _, err := budget.LiveProblem{
		Segments: live, DEx: dex, Be2e: be2e, Constraint: c,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(offline, online) {
		t.Fatalf("synthesized problems diverge:\noffline %+v\nonline  %+v", offline, online)
	}
	okOff, aOff := budget.Schedulable(offline)
	okOn, aOn := budget.Schedulable(online)
	if !okOff || !okOn {
		t.Fatalf("expected both schedulable (offline %v, online %v)", aOff.Reason, aOn.Reason)
	}
	if !reflect.DeepEqual(aOff.Deadlines, aOn.Deadlines) || aOff.Sum != aOn.Sum {
		t.Fatalf("deadline assignments diverge:\noffline %v\nonline  %v", aOff.Deadlines, aOn.Deadlines)
	}
}

// TestFromHealthToleratesMetaAndBlame pins forward compatibility of the
// -from-health scrape: a /health document carrying the meta and blame
// sections (emitted by runs with the attribution engine attached) must parse
// and solve exactly as one without them — the solver reads only the segment
// quantiles and ignores the extra sections.
func TestFromHealthToleratesMetaAndBlame(t *testing.T) {
	c := weaklyhard.Constraint{M: 1, K: 8}
	set := livestats.NewSet(0.01)
	segs := []string{"stage/a", "stage/b"}
	for i, name := range segs {
		sc := set.Segment(name, c)
		for j := 0; j < 200; j++ {
			sc.Observe(float64(2_000_000+i*1_500_000)+float64(j%89)*50_000, false)
		}
	}
	raw, err := json.Marshal(set.Health())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	doc["meta"] = json.RawMessage(`{"version":"v1.2.3","go_version":"go1.24",` +
		`"scenario":"perception","uptime_ns":123456789,"budget_epoch":2}`)
	doc["blame"] = json.RawMessage(`{"timebase":"sim","epoch":2,"flows":100,"missed":7,` +
		`"scopes":[{"scope":"s1a","flows":100,"missed":7,"e2e_total_ns":9,"total_blame_ns":5,` +
		`"hops":[{"name":"net→dds-recv","count":100,"total_ns":9,"blame_ns":5,"share_ppm":1000000}]}]}`)
	withExtras, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/health.json"
	if err := os.WriteFile(path, withExtras, 0o644); err != nil {
		t.Fatal(err)
	}

	h, err := readHealth(path)
	if err != nil {
		t.Fatalf("readHealth on a meta+blame document: %v", err)
	}
	withP, skipped, err := healthProblem(h, segs, 1_000_000, 40_000_000, 0, c)
	if err != nil || len(skipped) != 0 {
		t.Fatalf("healthProblem: err=%v skipped=%v", err, skipped)
	}

	var plain livestats.Health
	if err := json.Unmarshal(raw, &plain); err != nil {
		t.Fatal(err)
	}
	plainP, _, err := healthProblem(plain, segs, 1_000_000, 40_000_000, 0, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withP, plainP) {
		t.Fatalf("extra sections changed the synthesized problem:\nwith    %+v\nwithout %+v", withP, plainP)
	}
}
