// Command budgetsolve determines minimum segment deadlines from a recorded
// trace (Section III-C of the paper): it reads a trace file produced by
// cmd/chainmon -trace (JSON) or the CSV export, extends the latencies by
// d_ex, and solves the constraint satisfaction problem of Eqs. 2–7.
//
// With -from-health the input is a live /health document instead — either
// scraped from a running monitor's -metrics-addr endpoint or saved to a
// file. The quantile snapshots are expanded through the same live frontend
// the adaptive budget controller uses (budget.LiveProblem), so an offline
// solve over a scraped snapshot reproduces exactly the deadlines the online
// loop would actuate from it.
//
// Usage:
//
//	budgetsolve -trace t.json -m 2 -k 10 -be2e 400ms [-bseg 400ms]
//	            [-dex 1ms] [-solver auto|independent|greedy|exact]
//	budgetsolve -from-health http://host:9090/health -segments a,b
//	            -m 2 -k 10 -be2e 400ms [-dex 1ms]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"chainmon/internal/budget"
	"chainmon/internal/livestats"
	"chainmon/internal/sim"
	"chainmon/internal/trace"
	"chainmon/internal/weaklyhard"
)

func main() {
	tracePath := flag.String("trace", "", "trace file (JSON from cmd/chainmon -trace, or CSV)")
	fromHealth := flag.String("from-health", "", "/health document as input: a http(s):// URL scraped live, or a saved JSON file")
	m := flag.Int("m", 2, "tolerated misses m")
	k := flag.Int("k", 10, "window size k")
	be2e := flag.Duration("be2e", 400*time.Millisecond, "end-to-end budget B_e2e")
	bseg := flag.Duration("bseg", 0, "per-segment cap B_seg (0 = unconstrained)")
	dex := flag.Duration("dex", time.Millisecond, "exception handling WCRT d_ex")
	solver := flag.String("solver", "auto", "solver: auto, independent, greedy, exact")
	semantics := flag.String("semantics", "eq7", "window semantics: eq7 (the paper's additive Eq. 7) or or (disjunctive chain violations)")
	segments := flag.String("segments", "", "comma-separated segment names forming the chain, in order (default: all segments in file order; sorted by name with -from-health)")
	flag.Parse()

	if (*tracePath == "") == (*fromHealth == "") {
		fmt.Fprintln(os.Stderr, "exactly one of -trace and -from-health is required")
		flag.Usage()
		os.Exit(2)
	}

	c := weaklyhard.Constraint{M: *m, K: *k}
	var p budget.Problem
	if *fromHealth != "" {
		h, err := readHealth(*fromHealth)
		if err != nil {
			log.Fatal(err)
		}
		order := splitSegments(*segments)
		if order == nil {
			for name := range h.Segments {
				order = append(order, name)
			}
			sort.Strings(order)
		}
		var skipped []string
		p, skipped, err = healthProblem(h, order, int64(*dex), int64(*be2e), int64(*bseg), c)
		if err != nil {
			log.Fatal(err)
		}
		if len(skipped) > 0 {
			fmt.Printf("skipped unobserved segments: %s\n", strings.Join(skipped, ", "))
		}
	} else {
		tr, err := readTrace(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if order := splitSegments(*segments); order != nil {
			// A trace file may contain segments of several (parallel) chains;
			// restrict to the requested chain members, in the given order.
			var filtered trace.Trace
			for _, name := range order {
				st := tr.Segment(name)
				if st == nil {
					log.Fatalf("segment %q not in trace (have %s)", name, segmentNames(tr))
				}
				filtered.Segments = append(filtered.Segments, st)
			}
			tr = &filtered
		}

		p = budget.Problem{
			DEx:        int64(*dex),
			Be2e:       int64(*be2e),
			Bseg:       int64(*bseg),
			Constraint: c,
		}
		aligned := alignAll(tr)
		for i, st := range tr.Segments {
			p.Segments = append(p.Segments, budget.SegmentInput{
				Name:        st.Segment,
				Latencies:   aligned[i],
				Propagation: st.Propagation,
			})
		}
	}

	var a budget.Assignment
	switch *semantics {
	case "eq7":
		switch *solver {
		case "independent":
			a = budget.SolveIndependent(p)
		case "greedy":
			a = budget.SolveGreedy(p)
		case "exact":
			a = budget.SolveExact(p, 64)
		case "auto":
			_, a = budget.Schedulable(p)
		default:
			log.Fatalf("unknown solver %q", *solver)
		}
	case "or":
		a = budget.SolveExactOR(p, 64)
	default:
		log.Fatalf("unknown semantics %q", *semantics)
	}

	fmt.Printf("constraint %v, B_e2e=%v, B_seg=%v, d_ex=%v, %d aligned activations\n",
		p.Constraint, *be2e, *bseg, *dex, len(p.Segments[0].Latencies))
	if !a.Feasible {
		fmt.Printf("NOT SCHEDULABLE: %s\n", a.Reason)
		os.Exit(1)
	}
	fmt.Printf("schedulable, Σd = %v (%.1f%% of budget)\n",
		sim.Duration(a.Sum), 100*float64(a.Sum)/float64(p.Be2e))
	for i, d := range a.Deadlines {
		fmt.Printf("  %-24s d = %v\n", p.Segments[i].Name, sim.Duration(d))
	}
	verify := p.Verify
	if *semantics == "or" {
		verify = p.VerifyOR
	}
	if ok, why := verify(a.Deadlines); !ok {
		log.Fatalf("internal error: assignment failed verification: %s", why)
	}
}

// healthProblem turns a /health document into a solver problem through the
// live frontend — the exact code path the adaptive controller's ticks use,
// which is what keeps offline and online answers in agreement (pinned by
// TestHealthProblemMatchesControllerFrontend).
func healthProblem(h livestats.Health, order []string, dex, be2e, bseg int64, c weaklyhard.Constraint) (budget.Problem, []string, error) {
	segs, err := budget.FromHealth(h, order, nil)
	if err != nil {
		return budget.Problem{}, nil, err
	}
	lp := budget.LiveProblem{
		Segments: segs, DEx: dex, Be2e: be2e, Bseg: bseg, Constraint: c,
	}
	return lp.Build()
}

// readHealth loads a /health document from a URL or a file.
func readHealth(src string) (livestats.Health, error) {
	var h livestats.Health
	var raw []byte
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return h, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return h, fmt.Errorf("scraping %s: %s", src, resp.Status)
		}
		raw, err = io.ReadAll(resp.Body)
		if err != nil {
			return h, err
		}
	} else {
		var err error
		raw, err = os.ReadFile(src)
		if err != nil {
			return h, err
		}
	}
	if err := json.Unmarshal(raw, &h); err != nil {
		return h, fmt.Errorf("parsing health document: %w", err)
	}
	return h, nil
}

func splitSegments(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func segmentNames(tr *trace.Trace) string {
	names := make([]string, len(tr.Segments))
	for i, st := range tr.Segments {
		names[i] = st.Segment
	}
	return strings.Join(names, ", ")
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return trace.ReadCSV(f)
	}
	return trace.ReadJSON(f)
}

// alignAll restricts every segment to the activations all segments share.
func alignAll(tr *trace.Trace) [][]int64 {
	count := map[uint64]int{}
	for _, st := range tr.Segments {
		for _, a := range st.Activations {
			count[a]++
		}
	}
	out := make([][]int64, len(tr.Segments))
	for i, st := range tr.Segments {
		for j, a := range st.Activations {
			if count[a] == len(tr.Segments) {
				out[i] = append(out[i], int64(st.Latencies[j]))
			}
		}
	}
	return out
}
